//! Regenerates the §V.F Store-Sets MDP use case: check-policy comparison.

use idld_mdp::{CheckPolicy, DriverConfig, MdpPipeline};

fn main() {
    idld_bench::banner("SV.F use case: IDLD for the Store-Sets LFST");
    let policies = [
        ("counter-zero", CheckPolicy::CounterZero),
        ("sq-empty", CheckPolicy::SqEmpty),
        ("checkpointed(8)", CheckPolicy::Checkpointed { interval: 8 }),
    ];
    println!(
        "{:<16} {:>9} {:>9} {:>11} {:>11} {:>9}",
        "policy", "activated", "detected", "mean lat", "hangs", "hang-first"
    );
    for (name, policy) in policies {
        let mut activated = 0u64;
        let mut detected = 0u64;
        let mut hangs = 0u64;
        let mut hang_first = 0u64;
        let mut lat_sum = 0u64;
        for k in 0..40 {
            let cfg = DriverConfig {
                inject_removal_drop_at: Some(k * 7),
                seed: 0x111d + k,
                ..Default::default()
            };
            let out = MdpPipeline::new(cfg).run(policy);
            let Some(act) = out.activation_op else { continue };
            activated += 1;
            if let Some(det) = out.detection_op {
                detected += 1;
                lat_sum += det.saturating_sub(act);
            }
            if let Some(h) = out.hang_op {
                hangs += 1;
                if out.detection_op.is_none_or(|d| h < d) {
                    hang_first += 1;
                }
            }
        }
        let mean = if detected == 0 {
            0.0
        } else {
            lat_sum as f64 / detected as f64
        };
        println!(
            "{name:<16} {activated:>9} {detected:>9} {mean:>11.1} {hangs:>11} {hang_first:>9}"
        );
    }
    println!();
    println!("A dropped LFST removal leaves a load hanging on a departed store;");
    println!("the SQ-empty policy flags the XOR imbalance near-instantly, while");
    println!("the architectural hang may appear much later or never.");

    // Broader applicability: the credit-based link of SV.F's closing list.
    println!();
    println!("credit-based link (SV.F broader applicability):");
    use idld_mdp::{CreditLink, LinkDetection};
    let mut flit_drop = CreditLink::new(8);
    for f in 0..64u64 {
        flit_drop.send(f, f != 20); // flit 20 lost on the wire
        while flit_drop.deliver(true).is_some() {}
        flit_drop.check_idle();
    }
    println!("  dropped flit    → {:?}", flit_drop.detection());
    let mut credit_drop = CreditLink::new(8);
    for f in 0..64u64 {
        credit_drop.send(f, true);
        while credit_drop.deliver(f != 33).is_some() {} // credit 33 never returns
        credit_drop.check_idle();
    }
    println!("  dropped credit  → {:?}", credit_drop.detection());
    assert!(matches!(
        flit_drop.detection(),
        Some(LinkDetection::FlitXorMismatch { .. })
    ));
    assert!(matches!(
        credit_drop.detection(),
        Some(LinkDetection::CreditLeak { .. })
    ));
    println!("  two closed loops, two complementary checkers (XOR vs counter).");
}
