//! Ablation (ours): coverage of the XOR invariance on the *extended*
//! Table-I signals — pointer-update suppressions and recovery/checkpoint
//! signal drops — which the paper's three campaign classes do not sample.
//!
//! This probes the edges of the invariance: e.g. a FL write-*pointer*
//! suppression loses an id without ever unbalancing port traffic, so IDLD
//! is architecturally blind to it (a documented property, not a bug — see
//! EXPERIMENTS.md).

use idld_bugs::{BugModel, BugSpec, SingleShotHook};
use idld_campaign::{Campaign, CampaignConfig, GoldenRun};
use idld_core::{CheckerSet, IdldChecker};
use idld_sim::Simulator;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    idld_bench::banner("Ablation: extended control-signal sites vs the XOR invariance");
    let cfg = CampaignConfig::from_env();
    let campaign = Campaign::new(cfg.clone());
    let picks: Vec<_> = idld_workloads::suite()
        .into_iter()
        .filter(|w| matches!(w.name.as_str(), "crc32" | "qsort" | "dijkstra"))
        .collect();
    let runs = 8usize;
    println!(
        "{:<34} {:>7} {:>9} {:>9} {:>8}",
        "site (suppressed sub-signal)", "armed", "activated", "detected", "masked"
    );
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0xab1a);
    for choice in BugModel::EXTENDED_SITES {
        let mut armed = 0;
        let mut activated = 0;
        let mut detected = 0;
        let mut masked = 0;
        for w in &picks {
            let golden = GoldenRun::capture(w, cfg.sim).expect("golden run halts");
            let count = golden.census.count(choice.site);
            if count == 0 {
                continue;
            }
            for _ in 0..runs {
                let spec = BugSpec {
                    site: choice.site,
                    occurrence: rng.gen_range(0..count),
                    corruption: choice.corruption(0),
                    model: BugModel::Leakage, // reporting bucket only
                };
                armed += 1;
                // Drive manually (Campaign::run_one asserts activation,
                // which extended recovery-signal sites cannot guarantee).
                let mut hook = SingleShotHook::new(spec);
                let mut checkers = CheckerSet::new();
                checkers.push(Box::new(IdldChecker::new(&cfg.sim.rrs)));
                let mut sim = Simulator::new(&w.program, cfg.sim);
                let res = sim.run(
                    &mut hook,
                    &mut checkers,
                    Some(&golden.trace),
                    golden.timeout_budget(),
                );
                if hook.activation_cycle().is_none() {
                    continue;
                }
                activated += 1;
                if checkers.detection_of("idld").is_some() {
                    detected += 1;
                }
                if idld_campaign::classify(&res, &golden.output).is_masked() {
                    masked += 1;
                }
            }
        }
        let label = format!(
            "{:?} ({})",
            choice.site,
            if choice.suppress_ptr {
                "ptr"
            } else {
                "array/signal"
            }
        );
        println!("{label:<34} {armed:>7} {activated:>9} {detected:>9} {masked:>8}");
    }
    let _ = campaign;
    println!();
    println!("Expected edges: pointer-update drops on FL/ROB/RHT writes keep");
    println!("port traffic balanced (leak without imbalance) — IDLD coverage");
    println!("there is structural, not guaranteed. Recovery/checkpoint drops");
    println!("surface via walk-traffic imbalance when a flush crosses them.");
}
