//! Regenerates paper Figure 4: masked bugs persisting until reset.

use idld_campaign::analysis::PersistenceFigure;

fn main() {
    idld_bench::banner("Figure 4: persistence of masked bug effects");
    let res = idld_bench::run_standard_campaign();
    print!("{}", PersistenceFigure::build(&res).render());
    println!();
    println!("Paper shape: up to ~81% of masked bugs persist; some benchmarks");
    println!("(sha, qsort in the paper) show ~0%.");
}
