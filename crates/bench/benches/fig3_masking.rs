//! Regenerates paper Figure 3: masked bug activations per benchmark × model.

use idld_campaign::analysis::MaskingFigure;

fn main() {
    idld_bench::banner("Figure 3: masking probability per benchmark and bug model");
    let res = idld_bench::run_standard_campaign();
    print!("{}", MaskingFigure::build(&res).render());
    println!();
    println!("Paper shape: Leakage masks most (up to ~71%), Duplication less");
    println!("(up to ~22%), PdstID Corruption least (up to ~3%).");
}
