//! The lockstep differential oracle.
//!
//! One generated program is executed on the architectural emulator (the
//! golden model) and on the out-of-order simulator at every requested
//! configuration, with the full checker complement armed and **no** fault
//! injected. Any observable disagreement is a finding:
//!
//! * stop-reason disagreement (halt vs crash vs hang, or crashes with
//!   different causes);
//! * output-stream, architectural-register or memory-state disagreement;
//! * commit-count disagreement (the OoO core must commit exactly the
//!   architectural instruction sequence);
//! * commit-trace (pc sequence) disagreement **between** simulator
//!   configurations — widths must not change architectural order;
//! * a checker detection on a clean run (checker false positive — the
//!   soundness half of the paper's "no false alarms" claim).

use crate::gen::MAX_DYNAMIC_STEPS;
use idld_core::{BitVectorChecker, CheckerSet, CounterChecker, IdldChecker};
use idld_isa::emu::{EmuFault, EmuResult, Emulator, StopReason};
use idld_isa::reg::NUM_ARCH_REGS;
use idld_isa::Program;
use idld_rrs::NoFaults;
use idld_sim::{CrashCause, SimConfig, SimStop};
use std::fmt;

/// Architectural step budget granted to the emulator. The generator's
/// dynamic-cost ledger guarantees termination well below this, so hitting
/// it is itself a finding (a generator invariant violation).
pub const EMU_STEP_BUDGET: u64 = 2 * MAX_DYNAMIC_STEPS;

/// One observable disagreement between the golden model and the OoO
/// simulator (or between simulator configurations).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DiffDivergence {
    /// The emulator did not terminate within [`EMU_STEP_BUDGET`]: the
    /// generator's termination guarantee was violated.
    EmuStepLimit,
    /// The simulator exhausted its cycle budget on a program the emulator
    /// finished.
    Hang {
        /// Pipeline width of the hanging configuration.
        width: usize,
        /// Cycle budget that was exhausted.
        budget: u64,
    },
    /// Emulator and simulator stopped for different reasons (includes
    /// crash-cause mismatches and RRS asserts on clean runs).
    StopMismatch {
        /// Pipeline width of the disagreeing configuration.
        width: usize,
        /// How the emulator stopped.
        emu: StopReason,
        /// How the simulator stopped.
        sim: SimStop,
    },
    /// The `Out` streams differ.
    OutputMismatch {
        /// Pipeline width of the disagreeing configuration.
        width: usize,
        /// Index of the first differing element (or the shorter length).
        index: usize,
    },
    /// The simulator committed a different number of instructions than the
    /// emulator architecturally executed.
    CommitCountMismatch {
        /// Pipeline width of the disagreeing configuration.
        width: usize,
        /// Architectural steps the emulator executed.
        emu_steps: u64,
        /// Instructions the simulator committed.
        committed: u64,
    },
    /// An architectural register differs after the run.
    RegMismatch {
        /// Pipeline width of the disagreeing configuration.
        width: usize,
        /// The logical register index.
        arch: usize,
        /// Emulator's final value.
        emu: u64,
        /// Simulator's final (retirement-RAT) value.
        sim: u64,
    },
    /// Data memory differs after the run.
    MemMismatch {
        /// Pipeline width of the disagreeing configuration.
        width: usize,
        /// Address of the first differing byte.
        addr: u64,
    },
    /// Two simulator configurations committed different pc sequences.
    TraceMismatch {
        /// Widths of the two disagreeing configurations.
        widths: (usize, usize),
        /// Index of the first differing commit (or the shorter length).
        index: usize,
    },
    /// A checker fired on a clean (fault-free) run.
    CheckerFalsePositive {
        /// Pipeline width of the configuration.
        width: usize,
        /// Which checker fired.
        checker: &'static str,
        /// Cycle of the (spurious) detection.
        cycle: u64,
    },
}

impl DiffDivergence {
    /// A stable short label for corpus metadata and finding triage.
    pub fn kind(&self) -> &'static str {
        match self {
            DiffDivergence::EmuStepLimit => "emu-step-limit",
            DiffDivergence::Hang { .. } => "hang",
            DiffDivergence::StopMismatch { .. } => "stop-mismatch",
            DiffDivergence::OutputMismatch { .. } => "output-mismatch",
            DiffDivergence::CommitCountMismatch { .. } => "commit-count-mismatch",
            DiffDivergence::RegMismatch { .. } => "reg-mismatch",
            DiffDivergence::MemMismatch { .. } => "mem-mismatch",
            DiffDivergence::TraceMismatch { .. } => "trace-mismatch",
            DiffDivergence::CheckerFalsePositive { .. } => "checker-false-positive",
        }
    }
}

impl fmt::Display for DiffDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiffDivergence::EmuStepLimit => {
                write!(f, "emulator exceeded its step budget (generator bug)")
            }
            DiffDivergence::Hang { width, budget } => {
                write!(f, "width {width}: simulator hung past {budget} cycles")
            }
            DiffDivergence::StopMismatch { width, emu, sim } => {
                write!(f, "width {width}: emulator stopped {emu:?}, simulator {sim:?}")
            }
            DiffDivergence::OutputMismatch { width, index } => {
                write!(f, "width {width}: output streams differ at index {index}")
            }
            DiffDivergence::CommitCountMismatch {
                width,
                emu_steps,
                committed,
            } => write!(
                f,
                "width {width}: emulator executed {emu_steps} steps, simulator committed {committed}"
            ),
            DiffDivergence::RegMismatch {
                width,
                arch,
                emu,
                sim,
            } => write!(
                f,
                "width {width}: r{arch} = {emu:#x} (emulator) vs {sim:#x} (simulator)"
            ),
            DiffDivergence::MemMismatch { width, addr } => {
                write!(f, "width {width}: memory differs at address {addr:#x}")
            }
            DiffDivergence::TraceMismatch { widths, index } => write!(
                f,
                "widths {} and {}: commit pc sequences differ at commit {index}",
                widths.0, widths.1
            ),
            DiffDivergence::CheckerFalsePositive {
                width,
                checker,
                cycle,
            } => write!(
                f,
                "width {width}: checker '{checker}' fired on a clean run at cycle {cycle}"
            ),
        }
    }
}

/// The outcome of one differential iteration.
#[derive(Clone, Debug, Default)]
pub struct DiffOutcome {
    /// Every divergence observed, across all configurations.
    pub divergences: Vec<DiffDivergence>,
    /// Architectural steps of the golden run.
    pub emu_steps: u64,
}

impl DiffOutcome {
    /// True when the program agreed everywhere.
    pub fn clean(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// True when the simulator stop reason is the architectural image of the
/// emulator's (same halt, or same crash cause).
fn stops_agree(emu: &StopReason, sim: &SimStop) -> bool {
    match (emu, sim) {
        (StopReason::Halted, SimStop::Halted) => true,
        (
            StopReason::Fault(EmuFault::Mem(m)),
            SimStop::Crash(CrashCause::MemFault { addr, width }),
        ) => m.addr == *addr && m.width == *width,
        (StopReason::Fault(EmuFault::InvalidPc(p)), SimStop::Crash(CrashCause::InvalidPc(q))) => {
            p == q
        }
        _ => false,
    }
}

/// Runs `program` on the emulator and on the simulator at each of `cfgs`,
/// collecting every divergence. `cfgs` must be non-empty; commit traces
/// are additionally cross-checked between configurations.
pub fn differential(program: &Program, cfgs: &[SimConfig]) -> DiffOutcome {
    let mut out = DiffOutcome::default();
    let mut emu = Emulator::new(program);
    let golden: EmuResult = emu.run(EMU_STEP_BUDGET);
    out.emu_steps = golden.steps;
    if golden.stop == StopReason::StepLimit {
        out.divergences.push(DiffDivergence::EmuStepLimit);
        return out;
    }

    // The simulator budget scales with the architectural step count: even
    // a width-1 core with serial dependencies and cold predictors stays
    // far under 40 cycles per instruction on these programs.
    let budget = golden.steps.saturating_mul(40) + 50_000;
    let mut traces: Vec<(usize, Vec<u32>)> = Vec::new();

    for cfg in cfgs {
        let width = cfg.width();
        let mut checkers = CheckerSet::new();
        checkers.push(Box::new(IdldChecker::new(&cfg.rrs)));
        checkers.push(Box::new(BitVectorChecker::new(&cfg.rrs)));
        checkers.push(Box::new(CounterChecker::new(&cfg.rrs)));

        let mut sim = idld_sim::Simulator::new(program, *cfg);
        let res = sim.run(&mut NoFaults, &mut checkers, None, budget);

        if res.stop == SimStop::CycleLimit {
            out.divergences.push(DiffDivergence::Hang { width, budget });
            continue;
        }
        if !stops_agree(&golden.stop, &res.stop) {
            out.divergences.push(DiffDivergence::StopMismatch {
                width,
                emu: golden.stop,
                sim: res.stop,
            });
            continue;
        }

        // From here both models stopped at the same architectural point;
        // all architectural state must agree.
        if golden.output != res.output {
            let index = golden
                .output
                .iter()
                .zip(&res.output)
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| golden.output.len().min(res.output.len()));
            out.divergences
                .push(DiffDivergence::OutputMismatch { width, index });
        }
        // The emulator counts the faulting instruction as a step; the
        // simulator does not commit it.
        let expect_committed = match golden.stop {
            StopReason::Halted => golden.steps,
            _ => golden.steps - 1,
        };
        if res.committed != expect_committed {
            out.divergences.push(DiffDivergence::CommitCountMismatch {
                width,
                emu_steps: golden.steps,
                committed: res.committed,
            });
        }
        for arch in 0..NUM_ARCH_REGS {
            let e = emu.reg(idld_isa::reg::r(arch));
            let s = sim.arch_reg(arch);
            if e != s {
                out.divergences.push(DiffDivergence::RegMismatch {
                    width,
                    arch,
                    emu: e,
                    sim: s,
                });
            }
        }
        if emu.mem() != sim.mem() {
            let a = emu.mem().read_image(0, emu.mem().size());
            let b = sim.mem().read_image(0, sim.mem().size());
            let addr = a
                .iter()
                .zip(b)
                .position(|(x, y)| x != y)
                .unwrap_or_else(|| a.len().min(b.len())) as u64;
            out.divergences
                .push(DiffDivergence::MemMismatch { width, addr });
        }
        // IDLD must stay silent on every clean run. The BV and counter
        // baselines are only *applicable* without move/idiom elimination
        // (§V.E: eliminated writes create legitimate duplicates that those
        // schemes cannot distinguish from bugs), so their silence is only
        // required in elimination-free configurations.
        let baselines_apply = !cfg.rrs.move_elim && !cfg.rrs.idiom_elim;
        for (name, det) in checkers.detections() {
            if let Some(d) = det {
                if name == "idld" || baselines_apply {
                    out.divergences.push(DiffDivergence::CheckerFalsePositive {
                        width,
                        checker: name,
                        cycle: d.cycle,
                    });
                }
            }
        }
        traces.push((width, res.trace.pcs));
    }

    // Cross-width commit-order check: architectural order is width-
    // invariant, so every recorded trace must be identical.
    if let Some((w0, t0)) = traces.first() {
        for (wi, ti) in traces.iter().skip(1) {
            if ti != t0 {
                let index = t0
                    .iter()
                    .zip(ti)
                    .position(|(a, b)| a != b)
                    .unwrap_or_else(|| t0.len().min(ti.len()));
                out.divergences.push(DiffDivergence::TraceMismatch {
                    widths: (*w0, *wi),
                    index,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn default_configs_agree_on_a_generated_program() {
        let mut rng = SmallRng::seed_from_u64(7);
        let cfg = GenConfig::sample(&mut rng);
        let p = generate(&cfg, &mut rng);
        let cfgs = [SimConfig::with_width(2), SimConfig::with_width(4)];
        let out = differential(&p, &cfgs);
        assert!(out.clean(), "unexpected divergences: {:?}", out.divergences);
    }

    #[test]
    fn a_doctored_simulator_disagreement_is_reported() {
        // Sanity-check the oracle itself: a program whose output depends
        // on memory must produce identical streams; feed the oracle a
        // *different* program under the same name cannot happen through
        // the API, so instead check that stops_agree discriminates.
        use idld_isa::mem::MemFault;
        assert!(stops_agree(&StopReason::Halted, &SimStop::Halted));
        assert!(!stops_agree(
            &StopReason::Halted,
            &SimStop::Crash(CrashCause::InvalidPc(3))
        ));
        assert!(stops_agree(
            &StopReason::Fault(EmuFault::Mem(MemFault { addr: 9, width: 8 })),
            &SimStop::Crash(CrashCause::MemFault { addr: 9, width: 8 })
        ));
        assert!(!stops_agree(
            &StopReason::Fault(EmuFault::Mem(MemFault { addr: 9, width: 8 })),
            &SimStop::Crash(CrashCause::MemFault { addr: 8, width: 8 })
        ));
    }
}
