//! Delta-debugging minimization of failing programs.
//!
//! Classic ddmin over the instruction list: repeatedly try to delete
//! chunks of instructions (halving the chunk size when no deletion
//! survives), keeping a candidate only when the caller's predicate still
//! reports the failure. Branch and call targets are remapped across each
//! deletion so candidates stay structurally valid; a deletion is allowed
//! to change the program's semantics arbitrarily — the predicate is the
//! sole arbiter of "still interesting".

use idld_isa::{Inst, Program};

/// Upper bound on predicate evaluations per [`minimize`] call, so
//  pathological predicates cannot stall a fuzzing session.
const MAX_PROBES: usize = 2_000;

/// Returns `program` with instruction indices `start..end` removed and
/// every branch/jump target remapped onto the surviving indices (a target
/// inside the hole lands on the first instruction after it).
pub fn remove_range(program: &Program, start: usize, end: usize) -> Program {
    let removed = end - start;
    let remap = |t: usize| -> usize {
        if t < start {
            t
        } else if t >= end {
            t - removed
        } else {
            start
        }
    };
    let mut out = program.clone();
    out.insts = program
        .insts
        .iter()
        .enumerate()
        .filter(|(i, _)| *i < start || *i >= end)
        .map(|(_, inst)| match *inst {
            Inst::Br {
                cond,
                rs1,
                rs2,
                target,
            } => Inst::Br {
                cond,
                rs1,
                rs2,
                target: remap(target),
            },
            Inst::Jal { rd, target } => Inst::Jal {
                rd,
                target: remap(target),
            },
            other => other,
        })
        .collect();
    out
}

/// Minimizes `program` under `still_fails`: returns the smallest program
/// found (by instruction count) for which the predicate holds. The
/// predicate is assumed true for `program` itself and is re-evaluated for
/// every candidate; the search is deterministic and bounded by an
/// internal probe budget.
pub fn minimize<F: FnMut(&Program) -> bool>(program: &Program, mut still_fails: F) -> Program {
    let mut cur = program.clone();
    let mut probes = 0usize;
    // Chunk size starts at half the program and halves on every sterile
    // sweep; one pass at chunk size 1 finishes the reduction.
    let mut chunk = (cur.insts.len() / 2).max(1);
    loop {
        let mut improved = false;
        let mut start = 0;
        while start < cur.insts.len() {
            if probes >= MAX_PROBES {
                return cur;
            }
            let end = (start + chunk).min(cur.insts.len());
            let candidate = remove_range(&cur, start, end);
            probes += 1;
            if !candidate.insts.is_empty() && still_fails(&candidate) {
                cur = candidate;
                improved = true;
                // The window now holds fresh content; retry at the same
                // position.
            } else {
                start = end;
            }
        }
        if improved {
            continue;
        }
        if chunk == 1 {
            return cur;
        }
        chunk = (chunk / 2).max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idld_isa::reg::r;
    use idld_isa::Asm;

    /// A program with one load-bearing instruction (`out r5`) buried in
    /// noise; the predicate is "still emits 77".
    fn needle_program() -> Program {
        let mut a = Asm::new();
        for i in 1..5 {
            a.li(r(i), i as i64);
        }
        a.li(r(5), 77);
        for i in 1..5 {
            a.addi(r(i), r(i), 1);
        }
        a.out(r(5));
        a.halt();
        a.finish()
    }

    fn emits_77(p: &Program) -> bool {
        let res = idld_isa::Emulator::new(p).run(10_000);
        res.output.contains(&77)
    }

    #[test]
    fn minimization_strips_noise_but_keeps_the_needle() {
        let p = needle_program();
        assert!(emits_77(&p));
        let m = minimize(&p, emits_77);
        assert!(emits_77(&m));
        // li + out (+ possibly halt) survive; all the noise goes.
        assert!(m.insts.len() <= 3, "got {:?}", m.insts);
    }

    #[test]
    fn branch_targets_are_remapped_across_deletions() {
        let mut a = Asm::new();
        a.li(r(1), 5);
        a.li(r(2), 0); // deletable noise
        a.j("end");
        a.li(r(3), 9); // skipped by the jump
        a.label("end");
        a.out(r(1));
        a.halt();
        let p = a.finish();
        let pred = |q: &Program| {
            let res = idld_isa::Emulator::new(q).run(1_000);
            res.output == vec![5]
        };
        assert!(pred(&p));
        let m = minimize(&p, pred);
        assert!(pred(&m));
        assert!(m.insts.len() < p.insts.len());
    }
}
