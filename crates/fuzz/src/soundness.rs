//! The checker-soundness fuzzer.
//!
//! For a generated program that halts cleanly, this half of the fuzzer
//! samples random Table-I injection plans (every bug model, random site /
//! occurrence / corruption) and runs each through the campaign's
//! single-injection machinery, then checks the paper's two soundness
//! claims from the *checker's* side:
//!
//! * **completeness** — every injected leak/duplication-class bug is
//!   detected by IDLD (the XOR invariance cannot miss a deviation from an
//!   exact partition);
//! * **instantaneity** — for [`BugModel::Duplication`] and
//!   [`BugModel::Leakage`], the IDLD detection cycle is no later than the
//!   bug's first *architectural* manifestation (crash, assert, SDC,
//!   control-flow deviation or timeout). Timing-only divergences
//!   ([`OutcomeClass::Performance`]) are exempt: a wrong-path stall can
//!   precede the corrupted id's first observable use.
//!
//! Clean-run false positives are the oracle's job (see
//! [`crate::oracle`]); a run that panics inside the simulator is reported
//! as its own violation class rather than aborting the fuzzer.

use idld_bugs::{BugModel, BugSpec};
use idld_campaign::{Campaign, CampaignConfig, GoldenRun, OutcomeClass, RunRecord};
use idld_isa::Program;
use idld_sim::SimConfig;
use idld_workloads::Workload;
use rand::rngs::SmallRng;
use std::fmt;

/// One violation of the checker-soundness contract.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SoundnessViolation {
    /// The clean program halted on the emulator but the golden simulator
    /// run failed — a differential bug surfacing through the soundness
    /// path.
    GoldenMismatch {
        /// The golden-run error, rendered.
        error: String,
    },
    /// IDLD never detected an injected bug.
    NotDetected {
        /// The injected bug model.
        model: BugModel,
        /// The injection plan, rendered.
        spec: String,
        /// How the run was classified.
        outcome: OutcomeClass,
    },
    /// IDLD detected the bug only after its first architectural
    /// manifestation.
    LateDetection {
        /// The injected bug model.
        model: BugModel,
        /// The injection plan, rendered.
        spec: String,
        /// IDLD's first detection cycle.
        idld_cycle: u64,
        /// Cycle of the first architectural manifestation.
        manifestation_cycle: u64,
    },
    /// The simulator panicked during the injected run.
    RunPanicked {
        /// The injected bug model.
        model: BugModel,
        /// The injection plan, rendered.
        spec: String,
        /// The panic message.
        message: String,
    },
}

impl SoundnessViolation {
    /// A stable short label for corpus metadata and finding triage.
    pub fn kind(&self) -> &'static str {
        match self {
            SoundnessViolation::GoldenMismatch { .. } => "golden-mismatch",
            SoundnessViolation::NotDetected { .. } => "not-detected",
            SoundnessViolation::LateDetection { .. } => "late-detection",
            SoundnessViolation::RunPanicked { .. } => "run-panicked",
        }
    }
}

impl fmt::Display for SoundnessViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SoundnessViolation::GoldenMismatch { error } => {
                write!(f, "golden simulator run failed: {error}")
            }
            SoundnessViolation::NotDetected {
                model,
                spec,
                outcome,
            } => write!(
                f,
                "{} bug never detected by IDLD ({spec}; outcome {outcome:?})",
                model.label()
            ),
            SoundnessViolation::LateDetection {
                model,
                spec,
                idld_cycle,
                manifestation_cycle,
            } => write!(
                f,
                "{} bug detected at cycle {idld_cycle}, after its manifestation at {manifestation_cycle} ({spec})",
                model.label()
            ),
            SoundnessViolation::RunPanicked {
                model,
                spec,
                message,
            } => write!(f, "{} run panicked: {message} ({spec})", model.label()),
        }
    }
}

/// The outcome of one soundness iteration.
#[derive(Clone, Debug, Default)]
pub struct SoundnessOutcome {
    /// Every violation observed.
    pub violations: Vec<SoundnessViolation>,
    /// Number of injection runs performed.
    pub injections: usize,
    /// True when the program was skipped (it does not halt cleanly, so no
    /// golden run exists to inject against).
    pub skipped: bool,
}

impl SoundnessOutcome {
    /// True when every injection honoured the soundness contract.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Outcomes whose manifestation cycle is an *architectural* event that
/// IDLD must beat. Performance (timing-only) manifestations are exempt.
fn architectural(outcome: OutcomeClass) -> bool {
    matches!(
        outcome,
        OutcomeClass::ControlFlowDeviation
            | OutcomeClass::Sdc
            | OutcomeClass::Timeout
            | OutcomeClass::Assert
            | OutcomeClass::Crash
    )
}

/// Checks one injected-run record against the soundness contract.
fn check_record(rec: &RunRecord, violations: &mut Vec<SoundnessViolation>) {
    if let Some(message) = &rec.poisoned {
        violations.push(SoundnessViolation::RunPanicked {
            model: rec.model,
            spec: rec.spec.to_string(),
            message: message.clone(),
        });
        return;
    }
    let Some(idld) = rec.detections.idld else {
        violations.push(SoundnessViolation::NotDetected {
            model: rec.model,
            spec: rec.spec.to_string(),
            outcome: rec.outcome,
        });
        return;
    };
    // Instantaneity: a pure leak or duplication must be caught no later
    // than its first architectural manifestation. PdstCorruption is a
    // compound (leak + duplication of a different id), so completeness is
    // required but the race against the corrupted id's first use is not.
    if matches!(rec.model, BugModel::Duplication | BugModel::Leakage) && architectural(rec.outcome)
    {
        if let Some(m) = rec.manifestation_cycle {
            if idld > m {
                violations.push(SoundnessViolation::LateDetection {
                    model: rec.model,
                    spec: rec.spec.to_string(),
                    idld_cycle: idld,
                    manifestation_cycle: m,
                });
            }
        }
    }
}

/// Runs the soundness fuzzer for one program: `per_model` random
/// injections of each bug model, against the given simulator
/// configuration. Programs that do not halt cleanly on the emulator are
/// skipped (there is no golden run to inject against).
pub fn soundness(
    program: &Program,
    sim: SimConfig,
    per_model: usize,
    rng: &mut SmallRng,
) -> SoundnessOutcome {
    let mut out = SoundnessOutcome::default();
    let workload = match Workload::capture("fuzz", program.clone(), crate::oracle::EMU_STEP_BUDGET)
    {
        Ok(w) => w,
        Err(_) => {
            // Legitimately faulting programs are differential-oracle
            // territory, not soundness territory.
            out.skipped = true;
            return out;
        }
    };
    let golden = match GoldenRun::capture(&workload, sim) {
        Ok(g) => g,
        Err(e) => {
            out.violations.push(SoundnessViolation::GoldenMismatch {
                error: e.to_string(),
            });
            return out;
        }
    };
    let campaign = Campaign::new(CampaignConfig {
        sim,
        ..CampaignConfig::default()
    });
    for model in BugModel::ALL {
        for _ in 0..per_model {
            let Some(spec) = BugSpec::sample(model, &golden.census, sim.rrs.pdst_bits(), rng)
            else {
                // No candidate site ever fires in this program (e.g. no
                // checkpoints allocated); nothing to inject.
                continue;
            };
            let rec = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                campaign.run_one(&golden, spec)
            }))
            .unwrap_or_else(|payload| {
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".to_string());
                RunRecord::poisoned(
                    idld_campaign::DEFAULT_LABEL,
                    0,
                    &golden.workload.name,
                    spec,
                    message,
                )
            });
            out.injections += 1;
            check_record(&rec, &mut out.violations);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};
    use rand::SeedableRng;

    #[test]
    fn injections_into_a_generated_program_honour_the_contract() {
        let mut rng = SmallRng::seed_from_u64(11);
        let cfg = GenConfig {
            wild_mem: 0.0,
            wrong_path: 0.0,
            ..GenConfig::default()
        };
        let p = generate(&cfg, &mut rng);
        let out = soundness(&p, SimConfig::default(), 2, &mut rng);
        assert!(!out.skipped, "a wild-free program must halt cleanly");
        assert!(out.injections > 0);
        assert!(out.clean(), "violations: {:?}", out.violations);
    }

    #[test]
    fn faulting_programs_are_skipped() {
        use idld_isa::reg::r;
        let mut a = idld_isa::Asm::new();
        a.li(r(1), 1 << 40);
        a.ld(r(2), r(1), 0);
        a.halt();
        let p = a.finish();
        let mut rng = SmallRng::seed_from_u64(0);
        let out = soundness(&p, SimConfig::default(), 1, &mut rng);
        assert!(out.skipped);
        assert_eq!(out.injections, 0);
    }
}
