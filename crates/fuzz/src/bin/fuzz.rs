//! `fuzz` — the differential-fuzzing CLI.
//!
//! ```text
//! fuzz run      [--seed S] [--iters N] [--mode diff|soundness|both]
//!               [--widths 2,4] [--per-model K] [--corpus DIR]
//!               [--no-minimize] [--quiet]
//! fuzz replay   --seed S --iter I [run options]
//! fuzz replay   <corpus-entry.asm>
//! fuzz minimize <corpus-entry.asm>
//! ```
//!
//! Seeds accept decimal and `0x` hex; any other string (e.g. `0xIDLD`) is
//! hashed deterministically, so memorable seeds work too. `run` exits
//! non-zero when it finds anything; `replay` of a corpus entry verifies
//! that regenerating from the recorded `(seed, iter)` reproduces the
//! generated program **bit for bit**, then reports whether the recorded
//! finding still reproduces on the current code.

use idld_fuzz::{corpus, run_iteration, FuzzConfig, Mode};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Parses a seed: decimal, `0x` hex, or (for anything else) an FNV-1a
/// hash of the string — deterministic across runs and platforms.
fn parse_seed(s: &str) -> u64 {
    if let Ok(v) = s.parse::<u64>() {
        return v;
    }
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        if let Ok(v) = u64::from_str_radix(hex, 16) {
            return v;
        }
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: fuzz run      [--seed S] [--iters N] [--mode diff|soundness|both]\n\
         \x20                 [--widths 2,4] [--per-model K] [--corpus DIR]\n\
         \x20                 [--no-minimize] [--quiet]\n\
         \x20      fuzz replay   --seed S --iter I [run options]\n\
         \x20      fuzz replay   <corpus-entry.asm>\n\
         \x20      fuzz minimize <corpus-entry.asm>"
    );
    ExitCode::from(2)
}

/// Options shared by the subcommands, parsed from `--flag value` pairs.
struct Opts {
    cfg: FuzzConfig,
    iter: Option<u64>,
    quiet: bool,
    positional: Vec<String>,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        cfg: FuzzConfig {
            corpus_dir: Some(PathBuf::from("results/fuzz/corpus")),
            ..FuzzConfig::default()
        },
        iter: None,
        quiet: false,
        positional: Vec::new(),
    };
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{} needs a value", args[*i - 1]))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => o.cfg.seed = parse_seed(&value(&mut i)?),
            "--iters" => {
                o.cfg.iters = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--iters: {e}"))?
            }
            "--iter" => o.iter = Some(value(&mut i)?.parse().map_err(|e| format!("--iter: {e}"))?),
            "--mode" => {
                let v = value(&mut i)?;
                o.cfg.mode = Mode::parse(&v).ok_or_else(|| format!("unknown mode '{v}'"))?;
            }
            "--widths" => {
                let v = value(&mut i)?;
                o.cfg.widths = v
                    .split(',')
                    .map(|w| w.trim().parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|e| format!("--widths: {e}"))?;
                if o.cfg.widths.is_empty() {
                    return Err("--widths needs at least one width".to_string());
                }
            }
            "--per-model" => {
                o.cfg.per_model = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--per-model: {e}"))?
            }
            "--corpus" => o.cfg.corpus_dir = Some(PathBuf::from(value(&mut i)?)),
            "--no-corpus" => o.cfg.corpus_dir = None,
            "--no-minimize" => o.cfg.minimize = false,
            "--quiet" => o.quiet = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag '{flag}'")),
            _ => o.positional.push(args[i].clone()),
        }
        i += 1;
    }
    Ok(o)
}

fn cmd_run(o: Opts) -> ExitCode {
    let cfg = o.cfg;
    eprintln!(
        "fuzz: seed {:#x}, {} iters, mode {}, widths {:?}",
        cfg.seed,
        cfg.iters,
        cfg.mode.label(),
        cfg.widths
    );
    let report = idld_fuzz::run_fuzz_with(&cfg, |iter, found| {
        if !o.quiet && (iter + 1) % 100 == 0 {
            eprintln!(
                "fuzz: {}/{} iterations, {found} findings",
                iter + 1,
                cfg.iters
            );
        }
    });
    for f in &report.findings {
        println!(
            "FINDING iter {:05} [{}] {}: {}",
            f.iter, f.mode, f.kind, f.detail
        );
        if let Some(dir) = &cfg.corpus_dir {
            println!(
                "  saved: {}",
                dir.join(format!("{}.asm", f.stem(cfg.seed))).display()
            );
        }
    }
    println!(
        "fuzz: {} iterations ({} differential, {} soundness programs / {} injections, {} skipped): {} findings",
        report.iters,
        report.diff_runs,
        report.soundness_runs,
        report.soundness_injections,
        report.soundness_skipped,
        report.findings.len()
    );
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Replays one iteration and prints its outcome; returns true when clean.
fn replay_iteration(cfg: &FuzzConfig, iter: u64) -> bool {
    let out = run_iteration(cfg, iter);
    println!(
        "replay: seed {:#x} iter {iter}: {} instructions",
        cfg.seed,
        out.program.insts.len()
    );
    let mut clean = true;
    if let Some(d) = &out.diff {
        for div in &d.divergences {
            println!("  diff: {div}");
            clean = false;
        }
    }
    if let Some(s) = &out.soundness {
        if s.skipped {
            println!("  soundness: skipped (program faults by design)");
        }
        for v in &s.violations {
            println!("  soundness: {v}");
            clean = false;
        }
    }
    if clean {
        println!("  clean: no divergences, no soundness violations");
    }
    clean
}

fn cmd_replay(o: Opts) -> ExitCode {
    // Corpus-entry replay: recover (seed, iter, mode, ...) from the
    // metadata, regenerate, and verify bit-for-bit equality with the
    // recorded original.
    if let Some(path) = o.positional.first() {
        let path = Path::new(path);
        let meta = match corpus::load_meta(path) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("fuzz replay: {e}");
                return ExitCode::from(2);
            }
        };
        let get = |k: &str| corpus::meta_value(&meta, k);
        let (Some(seed), Some(iter)) = (get("seed"), get("iter")) else {
            eprintln!("fuzz replay: metadata lacks seed/iter");
            return ExitCode::from(2);
        };
        let mut cfg = o.cfg;
        cfg.seed = parse_seed(seed);
        let iter: u64 = match iter.parse() {
            Ok(i) => i,
            Err(e) => {
                eprintln!("fuzz replay: bad iter in metadata: {e}");
                return ExitCode::from(2);
            }
        };
        if let Some(m) = get("mode").and_then(Mode::parse) {
            cfg.mode = m;
        }
        if let Some(w) = get("widths") {
            if let Ok(widths) = w.split(',').map(|x| x.parse::<usize>()).collect() {
                cfg.widths = widths;
            }
        }
        if let Some(pm) = get("per_model").and_then(|v| v.parse().ok()) {
            cfg.per_model = pm;
        }

        // Bit-for-bit check against the recorded original.
        let stem = path
            .file_name()
            .and_then(|n| n.to_str())
            .map(|n| {
                n.strip_suffix(".orig.asm")
                    .or_else(|| n.strip_suffix(".asm"))
                    .or_else(|| n.strip_suffix(".meta"))
                    .unwrap_or(n)
            })
            .unwrap_or_default();
        let orig_path = path.with_file_name(format!("{stem}.orig.asm"));
        let regenerated = run_iteration(&cfg, iter).program;
        match corpus::load_asm(&orig_path) {
            Ok(orig) => {
                if orig.insts == regenerated.insts && orig.image == regenerated.image {
                    println!(
                        "replay: regeneration matches {} bit for bit",
                        orig_path.display()
                    );
                } else {
                    eprintln!(
                        "fuzz replay: regenerated program DIFFERS from {}",
                        orig_path.display()
                    );
                    return ExitCode::from(2);
                }
            }
            Err(e) => eprintln!("fuzz replay: no original to verify against ({e})"),
        }
        let clean = replay_iteration(&cfg, iter);
        if clean {
            println!("replay: recorded finding no longer reproduces (fixed?)");
        }
        return ExitCode::SUCCESS;
    }

    // Seed/iter replay.
    let Some(iter) = o.iter else {
        eprintln!("fuzz replay: need --iter (or a corpus entry path)");
        return ExitCode::from(2);
    };
    if replay_iteration(&o.cfg, iter) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_minimize(o: Opts) -> ExitCode {
    let Some(path) = o.positional.first() else {
        eprintln!("fuzz minimize: need a corpus entry path");
        return ExitCode::from(2);
    };
    let path = Path::new(path);
    let program = match corpus::load_asm(path) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("fuzz minimize: {e}");
            return ExitCode::from(2);
        }
    };
    let meta = match corpus::load_meta(path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("fuzz minimize: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(kind) = corpus::meta_value(&meta, "kind").map(str::to_string) else {
        eprintln!("fuzz minimize: metadata lacks a finding kind");
        return ExitCode::from(2);
    };
    let mut cfg = o.cfg;
    if let Some(s) = corpus::meta_value(&meta, "seed") {
        cfg.seed = parse_seed(s);
    }
    let iter: u64 = corpus::meta_value(&meta, "iter")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    if let Some(w) = corpus::meta_value(&meta, "widths") {
        if let Ok(widths) = w.split(',').map(|x| x.parse::<usize>()).collect() {
            cfg.widths = widths;
        }
    }
    // Rebuild the iteration's simulator configurations so the predicate
    // matches the one the finding was recorded under.
    let out = run_iteration(&cfg, iter);
    let is_diff = corpus::meta_value(&meta, "mode") != Some("soundness");
    let minimized = if is_diff {
        idld_fuzz::minimize(&program, |p| {
            idld_fuzz::differential(p, &out.sim_cfgs)
                .divergences
                .iter()
                .any(|d| d.kind() == kind)
        })
    } else {
        let scfg = idld_fuzz::soundness_config(&out.sim_cfgs, iter);
        idld_fuzz::minimize(&program, |p| {
            let mut rng = idld_fuzz::iter_rng(cfg.seed ^ 0x5eed_5eed, iter);
            idld_fuzz::soundness(p, scfg, cfg.per_model, &mut rng)
                .violations
                .iter()
                .any(|v| v.kind() == kind)
        })
    };
    eprintln!(
        "fuzz minimize: {} -> {} instructions",
        program.insts.len(),
        minimized.insts.len()
    );
    print!("{}", idld_isa::disassemble(&minimized));
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let opts = match parse_opts(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("fuzz: {e}");
            return usage();
        }
    };
    match cmd.as_str() {
        "run" => cmd_run(opts),
        "replay" => cmd_replay(opts),
        "minimize" => cmd_minimize(opts),
        _ => usage(),
    }
}
