//! Seeded, deterministic differential fuzzing for the IDLD reproduction.
//!
//! Three pieces, composed by [`run_fuzz`]:
//!
//! * [`gen`] — a random tiny-RISC program generator with tunable shape
//!   knobs whose output is structurally valid and termination-guaranteed
//!   by construction;
//! * [`oracle`] — a lockstep differential oracle executing each program
//!   on the architectural emulator and on the OoO simulator at several
//!   configurations, cross-checking stop reasons, output streams,
//!   architectural register/memory state and commit traces, and flagging
//!   any checker detection on a clean run;
//! * [`soundness`] — a checker-soundness fuzzer injecting random Table-I
//!   bugs into cleanly-halting generated programs and verifying IDLD's
//!   completeness and instantaneity claims.
//!
//! Determinism: iteration `i` of seed `s` derives its RNG from `(s, i)`
//! alone (same scheme as the campaign's per-run RNGs), so any finding is
//! reproducible from its `(seed, iter)` pair regardless of which other
//! iterations ran. Findings are minimized with [`minimize`] and persisted
//! by [`corpus`] as `.asm` + seed metadata.

#![warn(missing_docs)]

pub mod corpus;
pub mod gen;
pub mod minimize;
pub mod oracle;
pub mod soundness;

pub use corpus::CorpusEntry;
pub use gen::{generate, GenConfig};
pub use minimize::minimize;
pub use oracle::{differential, DiffDivergence, DiffOutcome};
pub use soundness::{soundness, SoundnessOutcome, SoundnessViolation};

use idld_isa::Program;
use idld_sim::SimConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::path::PathBuf;

/// Which oracle(s) an iteration exercises.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Clean-run lockstep comparison only.
    Differential,
    /// Bug-injection soundness checking only.
    Soundness,
    /// Both (the default).
    Both,
}

impl Mode {
    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Option<Mode> {
        match s {
            "diff" | "differential" => Some(Mode::Differential),
            "soundness" => Some(Mode::Soundness),
            "both" => Some(Mode::Both),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn label(self) -> &'static str {
        match self {
            Mode::Differential => "diff",
            Mode::Soundness => "soundness",
            Mode::Both => "both",
        }
    }
}

/// A fuzzing session's parameters.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Master seed; every iteration derives from `(seed, iter)`.
    pub seed: u64,
    /// Number of iterations.
    pub iters: u64,
    /// Which oracle(s) to run.
    pub mode: Mode,
    /// Pipeline widths to cross-check (must be non-empty; ≥ 2 entries
    /// also enables the cross-width commit-trace comparison).
    pub widths: Vec<usize>,
    /// Soundness injections per bug model per iteration.
    pub per_model: usize,
    /// Delta-debug findings before reporting them.
    pub minimize: bool,
    /// Where to persist findings (`None` = don't persist).
    pub corpus_dir: Option<PathBuf>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0x1d1d,
            iters: 200,
            mode: Mode::Both,
            widths: vec![2, 4],
            per_model: 1,
            minimize: true,
            corpus_dir: None,
        }
    }
}

/// One reported finding (a divergence or soundness violation), carrying
/// its reproducer.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Iteration that produced it.
    pub iter: u64,
    /// `"diff"` or `"soundness"`.
    pub mode: &'static str,
    /// Stable short label (see [`DiffDivergence::kind`] /
    /// [`SoundnessViolation::kind`]).
    pub kind: String,
    /// Human-readable description of every observation this iteration.
    pub detail: String,
    /// The minimized reproducer (equals `original` when minimization is
    /// off or failed to reduce).
    pub program: Program,
    /// The program exactly as generated.
    pub original: Program,
}

impl Finding {
    /// The corpus file stem for this finding under `seed`.
    pub fn stem(&self, seed: u64) -> String {
        format!("{}-{seed:#x}-{:05}-{}", self.mode, self.iter, self.kind)
    }
}

/// Aggregate results of a fuzzing session.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Iterations executed.
    pub iters: u64,
    /// Differential comparisons performed (programs × 1).
    pub diff_runs: u64,
    /// Soundness-checked programs (cleanly-halting ones).
    pub soundness_runs: u64,
    /// Total bug injections performed.
    pub soundness_injections: u64,
    /// Programs skipped by the soundness fuzzer (they fault by design).
    pub soundness_skipped: u64,
    /// Every finding, in iteration order.
    pub findings: Vec<Finding>,
}

impl FuzzReport {
    /// True when the session found nothing.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// The per-iteration RNG: derived from `(seed, iter)` only, so iteration
/// results are independent of how many iterations run and in what order.
pub fn iter_rng(seed: u64, iter: u64) -> SmallRng {
    let mut h = DefaultHasher::new();
    (seed, iter).hash(&mut h);
    SmallRng::seed_from_u64(h.finish())
}

/// The simulator configurations an iteration cross-checks: one per
/// requested width, each with independently drawn optional-feature
/// toggles (move elimination, idiom elimination, memory dependence
/// speculation) so the feature matrix gets swept too.
fn sim_configs(widths: &[usize], rng: &mut SmallRng) -> Vec<SimConfig> {
    widths
        .iter()
        .map(|&w| {
            let mut c = SimConfig::with_width(w);
            c.rrs.move_elim = rng.gen_bool(0.5);
            c.rrs.idiom_elim = rng.gen_bool(0.5);
            c.mem_dep_speculation = rng.gen_bool(0.5);
            c
        })
        .collect()
}

/// The configuration the soundness fuzzer injects against for iteration
/// `iter`: one of the iteration's configurations, but with move/idiom
/// elimination forced off. Faults on *uncounted* (duplicate-marked)
/// writes are outside IDLD's tracked id circulation by design (§V.E), so
/// the detection contract is only claimed for the elimination-free
/// protection domain — which is also the paper's Table-I campaign
/// configuration.
pub fn soundness_config(sim_cfgs: &[SimConfig], iter: u64) -> SimConfig {
    let mut c = sim_cfgs[(iter as usize) % sim_cfgs.len()];
    c.rrs.move_elim = false;
    c.rrs.idiom_elim = false;
    c
}

/// Everything one iteration produced.
#[derive(Clone, Debug)]
pub struct IterationOutcome {
    /// The generated program.
    pub program: Program,
    /// The generator knobs used.
    pub gen_cfg: GenConfig,
    /// The simulator configurations cross-checked.
    pub sim_cfgs: Vec<SimConfig>,
    /// Differential result (when the mode ran it).
    pub diff: Option<DiffOutcome>,
    /// Soundness result (when the mode ran it).
    pub soundness: Option<SoundnessOutcome>,
}

/// Runs iteration `iter` of `cfg` and returns its raw outcome
/// (no minimization, no persistence). This is the unit `fuzz replay`
/// re-executes: identical `(cfg.seed, iter, mode, widths, per_model)`
/// produce an identical program and identical observations, bit for bit.
pub fn run_iteration(cfg: &FuzzConfig, iter: u64) -> IterationOutcome {
    let mut rng = iter_rng(cfg.seed, iter);
    let gen_cfg = GenConfig::sample(&mut rng);
    let mut program = generate(&gen_cfg, &mut rng);
    program.name = format!("fuzz-{:#x}-{iter:05}", cfg.seed);
    let sim_cfgs = sim_configs(&cfg.widths, &mut rng);

    let diff = matches!(cfg.mode, Mode::Differential | Mode::Both)
        .then(|| differential(&program, &sim_cfgs));
    let snd = matches!(cfg.mode, Mode::Soundness | Mode::Both).then(|| {
        let scfg = soundness_config(&sim_cfgs, iter);
        soundness(&program, scfg, cfg.per_model, &mut rng)
    });

    IterationOutcome {
        program,
        gen_cfg,
        sim_cfgs,
        diff,
        soundness: snd,
    }
}

/// Minimizes a differential finding: keep shrinking while the program
/// still produces a divergence of the same kind under the same
/// configurations.
fn minimize_diff(program: &Program, sim_cfgs: &[SimConfig], kind: &str) -> Program {
    minimize(program, |p| {
        differential(p, sim_cfgs)
            .divergences
            .iter()
            .any(|d| d.kind() == kind)
    })
}

/// Minimizes a soundness finding: keep shrinking while re-fuzzing the
/// candidate (fresh injections from a seed derived from the original
/// iteration) still produces a violation of the same kind.
fn minimize_soundness(
    program: &Program,
    scfg: SimConfig,
    per_model: usize,
    seed: u64,
    iter: u64,
    kind: &str,
) -> Program {
    minimize(program, |p| {
        let mut rng = iter_rng(seed ^ 0x5eed_5eed, iter);
        soundness(p, scfg, per_model, &mut rng)
            .violations
            .iter()
            .any(|v| v.kind() == kind)
    })
}

/// Runs a full fuzzing session, invoking `on_iter(iter, findings_so_far)`
/// after every iteration (for progress reporting).
pub fn run_fuzz_with(cfg: &FuzzConfig, mut on_iter: impl FnMut(u64, usize)) -> FuzzReport {
    assert!(!cfg.widths.is_empty(), "at least one width is required");
    let mut report = FuzzReport::default();
    for iter in 0..cfg.iters {
        let out = run_iteration(cfg, iter);
        let mut iter_findings: Vec<(&'static str, String, String)> = Vec::new();

        if let Some(d) = &out.diff {
            report.diff_runs += 1;
            if !d.clean() {
                let detail = d
                    .divergences
                    .iter()
                    .map(|x| x.to_string())
                    .collect::<Vec<_>>()
                    .join("; ");
                iter_findings.push(("diff", d.divergences[0].kind().to_string(), detail));
            }
        }
        if let Some(s) = &out.soundness {
            if s.skipped {
                report.soundness_skipped += 1;
            } else {
                report.soundness_runs += 1;
                report.soundness_injections += s.injections as u64;
            }
            if !s.clean() {
                let detail = s
                    .violations
                    .iter()
                    .map(|x| x.to_string())
                    .collect::<Vec<_>>()
                    .join("; ");
                iter_findings.push(("soundness", s.violations[0].kind().to_string(), detail));
            }
        }

        for (mode, kind, detail) in iter_findings {
            let minimized = if cfg.minimize {
                match mode {
                    "diff" => minimize_diff(&out.program, &out.sim_cfgs, &kind),
                    _ => {
                        let scfg = soundness_config(&out.sim_cfgs, iter);
                        minimize_soundness(&out.program, scfg, cfg.per_model, cfg.seed, iter, &kind)
                    }
                }
            } else {
                out.program.clone()
            };
            let finding = Finding {
                iter,
                mode,
                kind,
                detail,
                program: minimized,
                original: out.program.clone(),
            };
            if let Some(dir) = &cfg.corpus_dir {
                let entry = CorpusEntry {
                    stem: finding.stem(cfg.seed),
                    program: finding.program.clone(),
                    original: finding.original.clone(),
                    meta: finding_meta(cfg, &finding, &out),
                };
                // Persistence failure shouldn't lose the in-memory
                // finding; the caller still reports it.
                let _ = entry.save(dir);
            }
            report.findings.push(finding);
        }

        report.iters += 1;
        on_iter(iter, report.findings.len());
    }
    report
}

/// [`run_fuzz_with`] without a progress callback.
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    run_fuzz_with(cfg, |_, _| {})
}

/// The metadata block persisted next to a finding's `.asm` files.
fn finding_meta(cfg: &FuzzConfig, f: &Finding, out: &IterationOutcome) -> Vec<(String, String)> {
    vec![
        ("seed".to_string(), format!("{:#x}", cfg.seed)),
        ("iter".to_string(), f.iter.to_string()),
        ("mode".to_string(), f.mode.to_string()),
        ("kind".to_string(), f.kind.clone()),
        ("detail".to_string(), f.detail.clone()),
        (
            "widths".to_string(),
            cfg.widths
                .iter()
                .map(|w| w.to_string())
                .collect::<Vec<_>>()
                .join(","),
        ),
        ("per_model".to_string(), cfg.per_model.to_string()),
        ("gen_cfg".to_string(), format!("{:?}", out.gen_cfg)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_short_session_is_deterministic() {
        let cfg = FuzzConfig {
            iters: 5,
            minimize: false,
            ..FuzzConfig::default()
        };
        let a = run_fuzz(&cfg);
        let b = run_fuzz(&cfg);
        assert_eq!(a.iters, b.iters);
        assert_eq!(a.findings.len(), b.findings.len());
        assert_eq!(a.diff_runs, b.diff_runs);
        assert_eq!(a.soundness_injections, b.soundness_injections);
    }

    #[test]
    fn iteration_outcomes_are_order_independent() {
        let cfg = FuzzConfig::default();
        let a = run_iteration(&cfg, 3);
        let b = run_iteration(&cfg, 3);
        assert_eq!(a.program.insts, b.program.insts);
        assert_eq!(
            a.diff.as_ref().map(|d| d.divergences.clone()),
            b.diff.as_ref().map(|d| d.divergences.clone())
        );
    }
}
