//! Random tiny-RISC program generation.
//!
//! Generated programs are *structurally valid* and *termination-guaranteed*
//! by a register discipline rather than by post-hoc filtering:
//!
//! * a handful of **reserved registers** (loop counters, call links, the
//!   safe data base) are never written by random body code, so counted
//!   loops always count down and calls always return;
//! * all data-dependent branches jump **forward only**; the only backward
//!   edges are the counted-loop back edges;
//! * calls form a DAG by depth (code at call depth *d* only calls
//!   functions at depth *d + 1*), bottoming out at
//!   [`GenConfig::call_depth`], and function bodies are loop-free so they
//!   can never clobber a live loop counter of their caller;
//! * a dynamic-cost ledger bounds the worst-case architectural step count
//!   (every emitted instruction is charged at the product of enclosing
//!   trip counts), so the emulator's step budget is a hard generator
//!   invariant, not a hope.
//!
//! Within that skeleton, everything else is adversarial: wild address
//! registers that may fault, wrong-path "poison blocks" behind
//! always-taken branches (never architecturally executed, freely executed
//! speculatively), zero/one idioms and register moves to trigger the
//! renamer's elimination paths, and dense unpredictable branching.

use idld_isa::reg::{r, ArchReg};
use idld_isa::{Asm, Program};
use rand::rngs::SmallRng;
use rand::Rng;

/// First byte of the always-mapped data window `SAFE_BASE..SAFE_BASE+SAFE_LEN`.
pub const SAFE_BASE: u64 = 0x1_0000;
/// Size of the safe data window in bytes.
pub const SAFE_LEN: u64 = 4096;
/// Worst-case architectural steps of any generated program (ledger bound).
pub const MAX_DYNAMIC_STEPS: u64 = 150_000;

/// Loop counters for nesting depths 0, 1, 2 (reserved registers).
const LOOP_CTR: [usize; 3] = [25, 26, 27];
/// Call link registers for call depths 0, 1, 2 (reserved registers).
const LINK: [usize; 3] = [28, 29, 30];
/// Holds [`SAFE_BASE`] for guaranteed-in-bounds memory traffic (reserved).
const SAFE_BASE_REG: usize = 31;
/// Dynamic-cost cap charged for a call to a function at each depth index
/// (a function's own budget covers its calls to the next depth).
const FN_COST: [u64; 3] = [3600, 1200, 400];

/// Tunable shape knobs for one generated program.
///
/// All probabilities are per body slot. [`GenConfig::sample`] draws a
/// diverse configuration from a seeded RNG so a long fuzzing run sweeps
/// the knob space instead of hovering around one program shape.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Straight-line body instructions in the main block (before loops,
    /// branch shadows and functions multiply the static count).
    pub body_len: usize,
    /// Probability a body slot is a control-flow construct (forward
    /// branch, counted loop or call).
    pub branch_density: f64,
    /// Probability a body slot is a load or store.
    pub mem_density: f64,
    /// Among memory slots, the fraction that are stores.
    pub store_ratio: f64,
    /// Probability a memory slot addresses through an arbitrary (possibly
    /// faulting) register instead of the safe data base.
    pub wild_mem: f64,
    /// Scratch registers available to random code (`r1..=r<reg_pool>`);
    /// small pools maximize renaming pressure via hot reuse.
    pub reg_pool: usize,
    /// Maximum counted-loop nesting depth (0..=3).
    pub loop_depth: usize,
    /// Maximum trip count of each counted loop.
    pub loop_trip_max: u64,
    /// Maximum call nesting depth (0..=3); calls checkpoint the RAT, so
    /// depth converts directly into checkpoint pressure.
    pub call_depth: usize,
    /// Probability a branch is an always-taken jump over a wrong-path
    /// "poison block" (wild loads / fault bombs that execute only
    /// speculatively).
    pub wrong_path: f64,
    /// Probability a body slot publishes a register to the output stream.
    pub out_density: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            body_len: 48,
            branch_density: 0.2,
            mem_density: 0.25,
            store_ratio: 0.4,
            wild_mem: 0.1,
            reg_pool: 12,
            loop_depth: 2,
            loop_trip_max: 5,
            call_depth: 2,
            wrong_path: 0.25,
            out_density: 0.1,
        }
    }
}

impl GenConfig {
    /// Draws a configuration spanning the interesting corners of the knob
    /// space (tiny hot register pools, branch-saturated bodies, deep
    /// nests, memory-free ALU storms, ...).
    pub fn sample(rng: &mut SmallRng) -> GenConfig {
        GenConfig {
            body_len: rng.gen_range(4usize..96),
            branch_density: rng.gen_range(0u32..40) as f64 / 100.0,
            mem_density: rng.gen_range(0u32..50) as f64 / 100.0,
            store_ratio: rng.gen_range(0u32..90) as f64 / 100.0,
            wild_mem: rng.gen_range(0u32..25) as f64 / 100.0,
            reg_pool: rng.gen_range(3usize..24),
            loop_depth: rng.gen_range(0usize..4),
            loop_trip_max: rng.gen_range(1u64..7),
            call_depth: rng.gen_range(0usize..4),
            wrong_path: rng.gen_range(0u32..50) as f64 / 100.0,
            out_density: rng.gen_range(0u32..20) as f64 / 100.0,
        }
    }
}

/// The generator: owns the assembler, the RNG, the label supply and the
/// dynamic-cost ledger while one program is being emitted.
struct Gen<'r> {
    a: Asm,
    rng: &'r mut SmallRng,
    cfg: GenConfig,
    next_label: usize,
    /// Function labels per call depth (index 0 = functions called from the
    /// main body).
    funcs: Vec<Vec<String>>,
    /// Remaining dynamic-step budget of the block being emitted.
    dyn_left: u64,
    /// Product of the enclosing counted-loop trip counts: the cost of one
    /// emitted instruction in worst-case architectural steps.
    mult: u64,
    /// Current structural nesting depth (loops + forward-branch shadow
    /// blocks). Bounded by [`MAX_NEST`] so generation recursion stays
    /// shallow enough for a default 2 MiB test-thread stack.
    nest: usize,
}

/// Structural nesting bound for [`Gen::branch_or_structure`]. The ledger
/// alone admits forward-branch nests hundreds of levels deep (each level
/// costs only a branch), which is a stack overflow in debug builds.
const MAX_NEST: usize = 24;

impl Gen<'_> {
    fn fresh_label(&mut self, stem: &str) -> String {
        self.next_label += 1;
        format!("{stem}_{}", self.next_label)
    }

    /// Charges `insts` emitted instructions against the ledger; returns
    /// false (and charges nothing) if the budget cannot afford them.
    fn charge(&mut self, insts: u64) -> bool {
        let cost = insts.saturating_mul(self.mult);
        if cost > self.dyn_left {
            return false;
        }
        self.dyn_left -= cost;
        true
    }

    /// A random scratch register (never a reserved one).
    fn scratch(&mut self) -> ArchReg {
        r(self
            .rng
            .gen_range(1usize..self.cfg.reg_pool.clamp(1, 23) + 1))
    }

    /// A random *readable* register: usually scratch, occasionally a
    /// reserved register (reading those is harmless and mixes long-lived
    /// values into the dataflow).
    fn readable(&mut self) -> ArchReg {
        if self.rng.gen_bool(0.12) {
            let reserved = [
                0,
                LOOP_CTR[0],
                LOOP_CTR[1],
                LOOP_CTR[2],
                LINK[0],
                LINK[1],
                LINK[2],
                SAFE_BASE_REG,
            ];
            r(reserved[self.rng.gen_range(0usize..reserved.len())])
        } else {
            self.scratch()
        }
    }

    /// A random immediate with a bias toward the special values the
    /// renamer treats specially (0/1 idioms) and toward small numbers.
    fn imm(&mut self) -> i64 {
        match self.rng.gen_range(0u32..8) {
            0 => 0,
            1 => 1,
            2 => -1,
            3..=5 => self.rng.gen_range(-512i64..512),
            6 => self.rng.gen_range(i32::MIN as i64..i32::MAX as i64),
            _ => self.rng.gen_range(i64::MIN..i64::MAX),
        }
    }

    /// One straight-line instruction (no control flow). Costs one ledger
    /// instruction, pre-charged by the caller.
    fn straight_line(&mut self) {
        use idld_isa::AluOp::*;
        let rd = self.scratch();
        let rs1 = self.readable();
        let rs2 = self.readable();
        let ops = [
            Add, Sub, Mul, Divu, Remu, And, Or, Xor, Sll, Srl, Sra, Slt, Sltu,
        ];
        if self.rng.gen_bool(self.cfg.mem_density) {
            self.memory_op(rd, rs1, rs2);
        } else if self.rng.gen_bool(self.cfg.out_density) {
            self.a.out(rs1);
        } else {
            match self.rng.gen_range(0u32..10) {
                // Register move: canonical move-elimination candidate.
                0 => {
                    self.a.mv(rd, rs1);
                }
                // Zeroing idiom: idiom-elimination candidate.
                1 => {
                    self.a.xor(rd, rs1, rs1);
                }
                2 => {
                    let imm = self.imm();
                    self.a.li(rd, imm);
                }
                3..=5 => {
                    let op = ops[self.rng.gen_range(0usize..ops.len())];
                    let imm = self.imm();
                    self.a.alui(op, rd, rs1, imm);
                }
                _ => {
                    let op = ops[self.rng.gen_range(0usize..ops.len())];
                    self.a.alu(op, rd, rs1, rs2);
                }
            }
        }
    }

    /// A load or store, safe-based or wild-addressed.
    fn memory_op(&mut self, rd: ArchReg, rs1: ArchReg, rs2: ArchReg) {
        let wild = self.rng.gen_bool(self.cfg.wild_mem);
        let (base, off) = if wild {
            (rs1, self.rng.gen_range(-64i64..64))
        } else {
            (
                r(SAFE_BASE_REG),
                self.rng.gen_range(0i64..(SAFE_LEN as i64 - 8)),
            )
        };
        let store = self.rng.gen_bool(self.cfg.store_ratio);
        let width = [1usize, 4, 8][self.rng.gen_range(0usize..3)];
        match (store, width) {
            (false, 1) => self.a.ldb(rd, base, off),
            (false, 4) => self.a.ldw(rd, base, off),
            (false, _) => self.a.ld(rd, base, off),
            (true, 1) => self.a.stb(rs2, base, off),
            (true, 4) => self.a.stw(rs2, base, off),
            (true, _) => self.a.st(rs2, base, off),
        };
    }

    /// Two instructions that *may* fault: placed architecturally (a legal
    /// early stop) or inside wrong-path shadows (speculation stress).
    fn fault_bomb(&mut self) {
        let rd = self.scratch();
        if self.rng.gen_bool(0.5) {
            // Guaranteed-wild load far beyond any memory size.
            let addr = (1u64 << 40) | self.rng.gen_range(0u64..1 << 20);
            self.a.li(rd, addr as i64);
            let rd2 = self.scratch();
            self.a.ld(rd2, rd, 0);
        } else {
            // Indirect jump to a guaranteed-invalid instruction index.
            // (A *random* jalr target could land backwards and loop
            // forever; a huge one deterministically faults.)
            let target = (1u64 << 32) | self.rng.gen_range(0u64..1 << 16);
            self.a.li(rd, target as i64);
            let link = self.scratch();
            self.a.jalr(link, rd, 0);
        }
    }

    /// One block of up to `len` body slots at the given loop/call depth.
    /// Stops early when the dynamic-cost ledger runs dry.
    fn block(&mut self, len: usize, loop_depth: usize, call_depth: usize) {
        for _ in 0..len {
            if self.dyn_left < self.mult.saturating_mul(2) {
                break;
            }
            if self.rng.gen_bool(self.cfg.branch_density) {
                self.branch_or_structure(loop_depth, call_depth);
            } else if self.charge(1) {
                self.straight_line();
            }
        }
    }

    /// A control-flow construct: forward branch (possibly over a poison
    /// block), counted loop, or call — whatever the remaining depth and
    /// budget allow.
    fn branch_or_structure(&mut self, loop_depth: usize, call_depth: usize) {
        if self.nest >= MAX_NEST {
            if self.charge(1) {
                self.straight_line();
            }
            return;
        }
        self.nest += 1;
        let can_loop = loop_depth < self.cfg.loop_depth.min(LOOP_CTR.len());
        let can_call =
            call_depth < self.cfg.call_depth.min(LINK.len()) && !self.funcs[call_depth].is_empty();
        match self.rng.gen_range(0u32..4) {
            0 if can_loop => self.counted_loop(loop_depth, call_depth),
            1 if can_call && self.charge(FN_COST[call_depth] + 1) => {
                let pick = self.rng.gen_range(0usize..self.funcs[call_depth].len());
                let f = self.funcs[call_depth][pick].clone();
                self.a.jal(r(LINK[call_depth]), &f);
            }
            _ => self.forward_branch(loop_depth, call_depth),
        }
        self.nest -= 1;
    }

    /// `li ctr, trips; top: body; ctr -= 1; bne ctr, r0, top`.
    fn counted_loop(&mut self, loop_depth: usize, call_depth: usize) {
        let trips = self.rng.gen_range(1u64..self.cfg.loop_trip_max + 1);
        // The skeleton costs 1 (li) + 2 per iteration (addi + bne); bail
        // out to a plain slot when even an empty loop is unaffordable.
        if !self.charge(1)
            || !{
                let saved = self.mult;
                self.mult = saved.saturating_mul(trips);
                let ok = self.charge(2);
                if !ok {
                    self.mult = saved;
                }
                ok
            }
        {
            if self.charge(1) {
                self.straight_line();
            }
            return;
        }
        let ctr = r(LOOP_CTR[loop_depth]);
        let top = self.fresh_label("loop");
        self.a.li(ctr, trips as i64);
        self.a.label(&top);
        let len = self.rng.gen_range(1usize..8);
        self.block(len, loop_depth + 1, call_depth);
        self.a.addi(ctr, ctr, -1);
        self.a.bne(ctr, r(0), &top);
        self.mult /= trips.max(1);
    }

    /// A forward conditional branch over a short shadow block. With
    /// probability [`GenConfig::wrong_path`] the branch is always taken
    /// (`beq rs, rs`) and the shadow is a poison block — wild loads and
    /// fault bombs that only ever execute speculatively.
    fn forward_branch(&mut self, loop_depth: usize, call_depth: usize) {
        use idld_isa::BrCond::*;
        if !self.charge(1) {
            return;
        }
        let skip = self.fresh_label("skip");
        let poison = self.rng.gen_bool(self.cfg.wrong_path);
        if poison {
            let rs = self.readable();
            self.a.beq(rs, rs, &skip);
            let len = self.rng.gen_range(1usize..5);
            for _ in 0..len {
                // Architecturally skipped, but charged anyway: the charge
                // is a conservative over-count, and wrong-path blocks stay
                // short.
                if !self.charge(2) {
                    break;
                }
                if self.rng.gen_bool(0.4) {
                    self.fault_bomb();
                } else {
                    self.straight_line();
                }
            }
        } else {
            let conds = [Eq, Ne, Lt, Ge, Ltu, Geu];
            let cond = conds[self.rng.gen_range(0usize..conds.len())];
            let rs1 = self.readable();
            let rs2 = self.readable();
            self.a.br(cond, rs1, rs2, &skip);
            let len = self.rng.gen_range(1usize..6);
            self.block(len, loop_depth, call_depth);
        }
        self.a.label(&skip);
    }

    /// Emits the body of one function with depth index `d` (it is called
    /// through `LINK[d]` and may call depth `d + 1` functions). Function
    /// bodies are loop-free — a loop here would clobber a caller's live
    /// loop counter — and run on their own dynamic budget, which is what a
    /// call site is charged.
    fn function(&mut self, label: &str, d: usize) {
        let saved = (self.dyn_left, self.mult);
        // Reserve the return jalr plus slack for the deepest call chain.
        self.dyn_left = FN_COST[d].saturating_sub(4);
        self.mult = 1;
        self.a.label(label);
        let len = self.rng.gen_range(2usize..16);
        self.block(len, LOOP_CTR.len(), d + 1);
        let rd = self.scratch();
        self.a.jalr(rd, r(LINK[d]), 0);
        (self.dyn_left, self.mult) = saved;
    }
}

/// Generates one structurally valid, termination-guaranteed program from
/// `cfg` and the given RNG. Identical `(cfg, rng state)` → identical
/// program, bit for bit; the worst-case architectural step count is below
/// [`MAX_DYNAMIC_STEPS`].
pub fn generate(cfg: &GenConfig, rng: &mut SmallRng) -> Program {
    let mut g = Gen {
        a: Asm::new(),
        rng,
        cfg: *cfg,
        next_label: 0,
        funcs: Vec::new(),
        dyn_left: MAX_DYNAMIC_STEPS - 64, // prologue + epilogue headroom
        mult: 1,
        nest: 0,
    };

    // Plan the function labels up front so call sites can reference them
    // before the bodies are emitted (forward fixups resolve them).
    let depth = cfg.call_depth.min(LINK.len());
    for d in 0..depth {
        let n = g.rng.gen_range(1usize..3);
        let labels = (0..n).map(|i| format!("fn_d{d}_{i}")).collect();
        g.funcs.push(labels);
    }
    g.funcs.resize(LINK.len(), Vec::new());

    // Seed data so early loads observe non-zero values.
    let words: Vec<u64> = (0..(SAFE_LEN / 8))
        .map(|_| g.rng.gen_range(0u64..u64::MAX))
        .collect();
    g.a.data_u64(SAFE_BASE, &words);

    // Reserved-register prologue.
    g.a.li(r(SAFE_BASE_REG), SAFE_BASE as i64);
    // Give a few scratch registers interesting starting values.
    for i in 1..=cfg.reg_pool.clamp(1, 23).min(6) {
        let imm = g.imm();
        g.a.li(r(i), imm);
    }

    // Main body.
    g.block(cfg.body_len, 0, 0);

    // Epilogue: publish every scratch register so silent architectural
    // differences become output differences, then halt.
    for i in 1..=cfg.reg_pool.clamp(1, 23) {
        g.a.out(r(i));
    }
    g.a.halt();

    // Function bodies, laid out after the halt.
    for d in 0..depth {
        for label in g.funcs[d].clone() {
            g.function(&label, d);
        }
    }

    g.a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use idld_isa::{Emulator, StopReason};
    use rand::SeedableRng;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..20u64 {
            let mut r1 = SmallRng::seed_from_u64(seed);
            let mut r2 = SmallRng::seed_from_u64(seed);
            let c1 = GenConfig::sample(&mut r1);
            let c2 = GenConfig::sample(&mut r2);
            let p1 = generate(&c1, &mut r1);
            let p2 = generate(&c2, &mut r2);
            assert_eq!(p1.insts, p2.insts, "seed {seed}");
            assert_eq!(p1.image, p2.image, "seed {seed}");
        }
    }

    #[test]
    fn generated_programs_terminate_within_the_ledger_bound() {
        // The termination guarantee is structural; StepLimit would mean a
        // generator bug (e.g. a backward data-dependent branch or a
        // mischarged loop nest).
        for seed in 0..60u64 {
            let mut rng = SmallRng::seed_from_u64(0x9e37 ^ seed);
            let cfg = GenConfig::sample(&mut rng);
            let p = generate(&cfg, &mut rng);
            let res = Emulator::new(&p).run(MAX_DYNAMIC_STEPS);
            assert_ne!(
                res.stop,
                StopReason::StepLimit,
                "seed {seed} exceeded the ledger bound ({cfg:?})"
            );
        }
    }

    #[test]
    fn knobs_change_the_program_shape() {
        let mut rng = SmallRng::seed_from_u64(1);
        let small = GenConfig {
            body_len: 4,
            branch_density: 0.0,
            loop_depth: 0,
            call_depth: 0,
            ..GenConfig::default()
        };
        let p_small = generate(&small, &mut rng);
        let mut rng = SmallRng::seed_from_u64(1);
        let big = GenConfig {
            body_len: 90,
            branch_density: 0.3,
            loop_depth: 3,
            call_depth: 3,
            ..GenConfig::default()
        };
        let p_big = generate(&big, &mut rng);
        assert!(p_big.insts.len() > p_small.insts.len() * 2);
    }
}
