//! Corpus persistence: findings as `.asm` files plus seed metadata.
//!
//! Every finding is saved as a directory-free trio under the corpus
//! directory (default `results/fuzz/corpus/`):
//!
//! * `<stem>.asm` — the (minimized) reproducer, disassembled; feed it back
//!   with `fuzz replay <stem>.asm` or any tool that calls
//!   [`idld_isa::parse_asm`];
//! * `<stem>.orig.asm` — the program exactly as generated, for bit-for-bit
//!   replay verification against the seed;
//! * `<stem>.meta` — `key: value` lines recording the seed, iteration,
//!   mode, finding kind and detail, so `fuzz replay` can regenerate the
//!   original program from scratch and confirm the corpus entry matches.

use idld_isa::{disassemble, parse_asm, Program};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One corpus entry ready to be written (or just read back).
#[derive(Clone, Debug)]
pub struct CorpusEntry {
    /// File stem, e.g. `diff-0xidld-00042-reg-mismatch`.
    pub stem: String,
    /// The minimized reproducer.
    pub program: Program,
    /// The program exactly as generated (pre-minimization).
    pub original: Program,
    /// Metadata `key: value` pairs (seed, iter, mode, kind, detail, ...).
    pub meta: Vec<(String, String)>,
}

impl CorpusEntry {
    /// Writes the entry's three files under `dir` (created if missing).
    /// Returns the path of the `.asm` reproducer.
    pub fn save(&self, dir: &Path) -> io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let asm_path = dir.join(format!("{}.asm", self.stem));
        fs::write(&asm_path, disassemble(&self.program))?;
        fs::write(
            dir.join(format!("{}.orig.asm", self.stem)),
            disassemble(&self.original),
        )?;
        let mut meta = String::new();
        for (k, v) in &self.meta {
            meta.push_str(k);
            meta.push_str(": ");
            meta.push_str(v);
            meta.push('\n');
        }
        fs::write(dir.join(format!("{}.meta", self.stem)), meta)?;
        Ok(asm_path)
    }
}

/// Loads a program from an `.asm` corpus file.
pub fn load_asm(path: &Path) -> Result<Program, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse_asm(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Loads the `key: value` metadata next to a corpus `.asm` file (accepts
/// the `.asm`, `.orig.asm` or `.meta` path itself).
pub fn load_meta(path: &Path) -> Result<Vec<(String, String)>, String> {
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| format!("{}: not a file path", path.display()))?;
    let stem = name
        .strip_suffix(".orig.asm")
        .or_else(|| name.strip_suffix(".asm"))
        .or_else(|| name.strip_suffix(".meta"))
        .unwrap_or(name);
    let meta_path = path.with_file_name(format!("{stem}.meta"));
    let text =
        fs::read_to_string(&meta_path).map_err(|e| format!("{}: {e}", meta_path.display()))?;
    Ok(text
        .lines()
        .filter_map(|l| {
            let (k, v) = l.split_once(':')?;
            Some((k.trim().to_string(), v.trim().to_string()))
        })
        .collect())
}

/// Looks up one metadata key.
pub fn meta_value<'m>(meta: &'m [(String, String)], key: &str) -> Option<&'m str> {
    meta.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;
    use idld_isa::reg::r;
    use idld_isa::Asm;

    fn tiny() -> Program {
        let mut a = Asm::new();
        a.li(r(1), 42);
        a.out(r(1));
        a.halt();
        a.finish()
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join("idld-fuzz-corpus-test");
        let _ = fs::remove_dir_all(&dir);
        let entry = CorpusEntry {
            stem: "diff-0-00001-output-mismatch".to_string(),
            program: tiny(),
            original: tiny(),
            meta: vec![
                ("seed".to_string(), "0".to_string()),
                ("iter".to_string(), "1".to_string()),
                ("kind".to_string(), "output-mismatch".to_string()),
            ],
        };
        let asm_path = entry.save(&dir).expect("save");
        let p = load_asm(&asm_path).expect("parse");
        assert_eq!(p.insts, tiny().insts);
        let meta = load_meta(&asm_path).expect("meta");
        assert_eq!(meta_value(&meta, "kind"), Some("output-mismatch"));
        assert_eq!(meta_value(&meta, "iter"), Some("1"));
        let orig = load_asm(&dir.join("diff-0-00001-output-mismatch.orig.asm")).expect("orig");
        assert_eq!(orig.insts, tiny().insts);
        let _ = fs::remove_dir_all(&dir);
    }
}
