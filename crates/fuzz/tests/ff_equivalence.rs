//! Seeded fast-forward equivalence fuzzing.
//!
//! The campaign's `IDLD_FF=1` mode replaces full mid-trace snapshots with
//! lean ones (no memory) restored through the in-order emulator behind an
//! architectural bit-exactness gate. Its proof obligation is that the
//! switch is *invisible* in every output byte. These tests probe that
//! obligation across the generator's random program space, not just the
//! curated suite:
//!
//! * [`ff_campaigns_produce_bit_identical_records`] — whole campaigns
//!   over ≥12 random halting programs, `ff` off vs on (and a nonzero
//!   guard window): the exported `records.csv` must be byte-identical
//!   and every forked run must have passed the arch gate.
//! * [`ff_forks_emit_byte_identical_traces`] — single injected runs with
//!   a [`RingRecorder`] attached: a fork restored from a full snapshot
//!   and one restored from its lean twin through the emulator must emit
//!   the exact same event stream (FNV digest, totals, per-kind counts,
//!   retained tail) and the same run result.
//! * [`block_engine_matches_single_step_on_random_programs`] — the
//!   emulator's pre-decoded block engine vs the single-step interpreter
//!   over the same random program space: identical registers, memory,
//!   output, pc and step count at halt *and* at every sampled
//!   `run_to_step` prefix.
//! * [`block_campaigns_produce_bit_identical_records`] — whole
//!   fast-forward campaigns with the block engine on vs off
//!   (`IDLD_EMU_BLOCK=0` semantics) across thread counts: byte-identical
//!   `records.csv`.

use idld_bugs::{BugModel, BugSpec, SingleShotHook};
use idld_campaign::{export, Campaign, CampaignConfig, GoldenRun};
use idld_core::{BitVectorChecker, CheckerSet, CounterChecker, IdldChecker};
use idld_fuzz::{generate, iter_rng, GenConfig};
use idld_isa::Emulator;
use idld_obs::RingRecorder;
use idld_sim::{SimConfig, Simulator};
use idld_workloads::Workload;

const SEED: u64 = 0xFF_1D1D;
const MIN_PROGRAMS: usize = 12;
const MAX_ITERS: u64 = 600;
/// Minimum dynamic length (architectural steps) for a usable program: a
/// run must outlive at least a few snapshot strides or every injection
/// starts cold and the fast-forward path is never exercised.
const MIN_STEPS: u64 = 400;

/// Generates random programs until `MIN_PROGRAMS` of them halt cleanly on
/// the emulator (those are the only ones a campaign can golden-run) *and*
/// run long enough for mid-trace snapshots to exist.
fn random_workloads(salt: u64) -> Vec<Workload> {
    let mut out = Vec::new();
    for iter in 0..MAX_ITERS {
        if out.len() >= MIN_PROGRAMS {
            break;
        }
        let mut rng = iter_rng(SEED ^ salt, iter);
        let gen_cfg = GenConfig::sample(&mut rng);
        let program = generate(&gen_cfg, &mut rng);
        let steps = {
            let mut emu = Emulator::new(&program);
            let r = emu.run(2_000_000);
            if r.stop != idld_isa::StopReason::Halted {
                continue;
            }
            r.steps
        };
        if steps < MIN_STEPS {
            continue;
        }
        if let Ok(w) = Workload::capture(format!("fuzz-{iter:03}"), program, 2_000_000) {
            out.push(w);
        }
    }
    assert!(
        out.len() >= MIN_PROGRAMS,
        "generator produced too few long halting programs ({}/{MIN_PROGRAMS})",
        out.len()
    );
    out
}

#[test]
fn ff_campaigns_produce_bit_identical_records() {
    let workloads = random_workloads(0);
    let base = CampaignConfig {
        runs_per_cell: 2,
        seed: 0x1d1d,
        snapshot: true,
        // Generated programs are far shorter than the suite workloads the
        // automatic stride is tuned for; a fine stride makes sure the
        // forked/fast-forwarded path actually executes.
        snapshot_stride: 64,
        ..CampaignConfig::default()
    };

    let plain = Campaign::new(base.clone())
        .run(&workloads)
        .expect("ff-off campaign");
    let plain_csv = export::to_csv(&plain);

    for (ff_guard, threads) in [(0, 1), (0, 4), (1024, 1)] {
        let ff = Campaign::new(CampaignConfig {
            ff: true,
            ff_guard,
            threads,
            ..base.clone()
        })
        .run(&workloads)
        .expect("ff-on campaign");
        assert_eq!(
            plain_csv,
            export::to_csv(&ff),
            "guard {ff_guard}, {threads} thread(s): fast-forward changed a record byte"
        );
        assert_eq!(ff.poisoned().count(), 0, "no run tripped the arch gate");
        assert_eq!(
            ff.snapshot_stats.ff_runs, ff.snapshot_stats.forked_runs,
            "every forked run went through the emulator hand-off"
        );
        assert!(
            ff.snapshot_stats.ff_runs > 0,
            "random programs produced no forked runs — the test probes nothing"
        );
    }
}

/// Asserts every architecturally visible piece of emulator state matches
/// between the block-engine run and the single-step reference.
fn assert_emu_state_eq(blocked: &Emulator, reference: &Emulator, what: &str) {
    assert_eq!(blocked.steps(), reference.steps(), "{what}: steps");
    assert_eq!(blocked.pc(), reference.pc(), "{what}: pc");
    assert_eq!(blocked.regs(), reference.regs(), "{what}: registers");
    assert_eq!(blocked.output(), reference.output(), "{what}: output");
    assert_eq!(blocked.mem(), reference.mem(), "{what}: memory");
}

#[test]
fn block_engine_matches_single_step_on_random_programs() {
    let mut dispatched = 0u64;
    for w in &random_workloads(0xb10c) {
        // Full run to halt on both engines.
        let mut blocked = Emulator::with_block_engine(&w.program, true);
        let mut reference = Emulator::single_step(&w.program);
        let rb = blocked.run(w.max_steps);
        let rr = reference.run(w.max_steps);
        assert_eq!(rb.stop, rr.stop, "{}: stop reason", w.name);
        assert_emu_state_eq(&blocked, &reference, &w.name);
        dispatched += blocked.block_stats().dispatches();

        // Sampled prefixes: run_to_step must stop at the exact step on
        // both engines, wherever the target lands relative to block
        // boundaries.
        let total = rb.steps;
        for target in [1, total / 3, total / 2, total - 1, total] {
            let mut blocked = Emulator::with_block_engine(&w.program, true);
            let mut reference = Emulator::single_step(&w.program);
            blocked
                .run_to_step(target)
                .unwrap_or_else(|s| panic!("{}: block prefix {target}: {s:?}", w.name));
            reference
                .run_to_step(target)
                .unwrap_or_else(|s| panic!("{}: single prefix {target}: {s:?}", w.name));
            assert_emu_state_eq(&blocked, &reference, &format!("{} @ {target}", w.name));
        }
    }
    assert!(
        dispatched > 0,
        "random programs never dispatched a block — the sweep probes nothing"
    );
}

#[test]
fn block_campaigns_produce_bit_identical_records() {
    let workloads = random_workloads(0xcafe);
    let base = CampaignConfig {
        runs_per_cell: 2,
        seed: 0xb10c,
        snapshot: true,
        ff: true,
        snapshot_stride: 64,
        ..CampaignConfig::default()
    };

    let blocked = Campaign::new(base.clone())
        .run(&workloads)
        .expect("block-on campaign");
    let blocked_csv = export::to_csv(&blocked);
    assert!(
        blocked.snapshot_stats.block.dispatches() > 0,
        "fast-forward hand-offs never dispatched a block"
    );

    for threads in [1, 4] {
        let single = Campaign::new(CampaignConfig {
            emu_block: false,
            threads,
            ..base.clone()
        })
        .run(&workloads)
        .expect("block-off campaign");
        assert_eq!(
            blocked_csv,
            export::to_csv(&single),
            "{threads} thread(s): disabling the block engine changed a record byte"
        );
        assert_eq!(
            single.snapshot_stats.block,
            idld_isa::BlockStats::default(),
            "block-off campaign must not touch the block engine"
        );
    }
}

#[test]
fn ff_forks_emit_byte_identical_traces() {
    let sim_cfg = SimConfig::default();
    let checkers_for = || {
        let mut c = CheckerSet::new();
        c.push(Box::new(IdldChecker::new(&sim_cfg.rrs)));
        c.push(Box::new(BitVectorChecker::new(&sim_cfg.rrs)));
        c.push(Box::new(CounterChecker::new(&sim_cfg.rrs)));
        c
    };

    let mut forked = 0usize;
    for (i, w) in random_workloads(0x7ace).iter().enumerate() {
        // Fine stride: generated programs are much shorter than the suite
        // workloads the automatic stride is tuned for.
        let full = GoldenRun::capture_with_snapshots(w, sim_cfg, 64, 64).expect("golden");
        let lean = GoldenRun::capture_with_lean_snapshots(w, sim_cfg, 64, 64).expect("golden");
        assert_eq!(full.snapshots.len(), lean.snapshots.len(), "{}", w.name);

        let mut rng = iter_rng(SEED ^ 0x7ace, i as u64);
        let model = BugModel::ALL[i % BugModel::ALL.len()];
        let Some(spec) = BugSpec::sample(model, &full.census, sim_cfg.rrs.pdst_bits(), &mut rng)
        else {
            continue;
        };
        let (Some(fsnap), Some(lsnap)) = (full.snapshot_for(&spec), lean.snapshot_for(&spec))
        else {
            continue; // cold either way: trivially equivalent
        };
        assert_eq!(fsnap.cycle, lsnap.cycle, "{}: same fork point", w.name);
        assert!(
            !lsnap.state.has_mem(),
            "{}: lean capture stripped memory",
            w.name
        );
        forked += 1;

        // Fork A: the full snapshot, memory restored from the capture.
        let mut chk_a = checkers_for();
        let mut rec_a = RingRecorder::new(512);
        let mut sim_a = Simulator::new(&w.program, sim_cfg);
        sim_a.restore_observed(&fsnap.state, &mut chk_a, &mut rec_a);
        let mut hook_a =
            SingleShotHook::resumed(spec, fsnap.counts[spec.site.index()], fsnap.cycle);
        let mut seg_a = sim_a.begin_run(Some(&full.trace), full.timeout_budget());
        let stop_a =
            seg_a.run_to_end_observed(&mut sim_a, &mut hook_a, &mut chk_a, None, &mut rec_a);
        let res_a = seg_a.finish(&mut sim_a, stop_a, &mut chk_a);

        // Fork B: the lean snapshot, memory rebuilt by the emulator,
        // admitted through the bit-exactness gate.
        let mut emu = Emulator::new(&w.program);
        emu.run_to_step(lsnap.state.committed())
            .expect("clean prefix");
        let mut chk_b = checkers_for();
        let mut rec_b = RingRecorder::new(512);
        let mut sim_b = Simulator::new(&w.program, sim_cfg);
        sim_b
            .restore_from_arch_observed(&lsnap.state, &emu, &mut chk_b, &mut rec_b)
            .expect("arch gate passes on the golden prefix");
        let mut hook_b =
            SingleShotHook::resumed(spec, lsnap.counts[spec.site.index()], lsnap.cycle);
        let mut seg_b = sim_b.begin_run(Some(&lean.trace), lean.timeout_budget());
        let stop_b =
            seg_b.run_to_end_observed(&mut sim_b, &mut hook_b, &mut chk_b, None, &mut rec_b);
        let res_b = seg_b.finish(&mut sim_b, stop_b, &mut chk_b);

        assert_eq!(res_a.stop, res_b.stop, "{}: stop", w.name);
        assert_eq!(res_a.cycles, res_b.cycles, "{}: cycles", w.name);
        assert_eq!(res_a.committed, res_b.committed, "{}: commits", w.name);
        assert_eq!(res_a.output, res_b.output, "{}: output", w.name);
        assert_eq!(res_a.stats, res_b.stats, "{}: stats", w.name);
        assert_eq!(
            res_a.divergence, res_b.divergence,
            "{}: divergence classification",
            w.name
        );
        assert_eq!(
            rec_a.digest(),
            rec_b.digest(),
            "{}: event stream digest",
            w.name
        );
        assert_eq!(rec_a.total(), rec_b.total(), "{}: event totals", w.name);
        assert_eq!(
            rec_a.counts(),
            rec_b.counts(),
            "{}: per-kind counts",
            w.name
        );
        assert!(
            rec_a.events().eq(rec_b.events()),
            "{}: retained event tails",
            w.name
        );
        assert_eq!(
            chk_a.detections(),
            chk_b.detections(),
            "{}: checker verdicts",
            w.name
        );
    }
    assert!(
        forked >= MIN_PROGRAMS / 2,
        "too few injected runs actually forked from snapshots ({forked})"
    );
}
