//! Seeded snapshot/fork determinism fuzzing.
//!
//! For random generated programs (reusing the differential fuzzer's
//! generator), run the simulator to completion, then rerun it pausing at
//! a random mid-run cycle, snapshot, fork the snapshot into a *fresh*
//! simulator and continue. The forked continuation must be bit-for-bit
//! identical to the uninterrupted run: stop reason, cycle count, commit
//! trace, outputs, statistics, final architectural/microarchitectural
//! state and checker verdicts. This is the property the campaign engine's
//! snapshot-and-fork execution rests on, probed across the generator's
//! full program space (wild memory, deep loops, calls, crashes included).

use idld_core::{BitVectorChecker, CheckerSet, CounterChecker, IdldChecker};
use idld_fuzz::{generate, iter_rng, GenConfig};
use idld_rrs::NoFaults;
use idld_sim::{SimConfig, Simulator};
use rand::Rng;

const SEED: u64 = 0x51AB_5407;
const ITERS: u64 = 12;
const BUDGET: u64 = 5_000_000;

fn checkers_for(cfg: &SimConfig) -> CheckerSet {
    let mut c = CheckerSet::new();
    c.push(Box::new(IdldChecker::new(&cfg.rrs)));
    c.push(Box::new(BitVectorChecker::new(&cfg.rrs)));
    c.push(Box::new(CounterChecker::new(&cfg.rrs)));
    c
}

#[test]
fn forked_runs_match_uninterrupted_runs() {
    let mut tested = 0u64;
    for iter in 0..ITERS {
        let mut rng = iter_rng(SEED, iter);
        let gen_cfg = GenConfig::sample(&mut rng);
        let program = generate(&gen_cfg, &mut rng);
        let mut sim_cfg = SimConfig::with_width([1, 2, 4, 8][iter as usize % 4]);
        sim_cfg.mem_dep_speculation = iter % 2 == 0;

        // Uninterrupted reference.
        let mut ref_checkers = checkers_for(&sim_cfg);
        let mut ref_sim = Simulator::new(&program, sim_cfg);
        let mut ref_seg = ref_sim.begin_run(None, BUDGET);
        let ref_stop = ref_seg.run_to_end(&mut ref_sim, &mut NoFaults, &mut ref_checkers, None);
        let ref_final = ref_sim.snapshot(&ref_checkers);
        let ref_res = ref_seg.finish(&mut ref_sim, ref_stop, &mut ref_checkers);
        if ref_res.cycles < 2 {
            continue; // nothing mid-run to pause at
        }
        tested += 1;

        // Paused run: stop at a random interior cycle and snapshot.
        let pause = rng.gen_range(1..ref_res.cycles);
        let mut checkers = checkers_for(&sim_cfg);
        let mut sim = Simulator::new(&program, sim_cfg);
        let mut seg = sim.begin_run(None, BUDGET);
        let paused = seg.step_until(&mut sim, &mut NoFaults, &mut checkers, pause);
        assert_eq!(
            paused, None,
            "iter {iter}: pause {pause} < end {}",
            ref_res.cycles
        );
        let snap = sim.snapshot(&checkers);

        // Fork into a fresh simulator and run to the end.
        let mut fork_checkers = CheckerSet::new();
        let mut fork = Simulator::new(&program, sim_cfg);
        fork.restore(&snap, &mut fork_checkers);
        let mut fseg = fork.begin_run(None, BUDGET);
        let stop = fseg.run_to_end(&mut fork, &mut NoFaults, &mut fork_checkers, None);
        let fork_final = fork.snapshot(&fork_checkers);
        let fork_res = fseg.finish(&mut fork, stop, &mut fork_checkers);

        assert_eq!(fork_res.stop, ref_res.stop, "iter {iter}: stop reason");
        assert_eq!(fork_res.cycles, ref_res.cycles, "iter {iter}: cycles");
        assert_eq!(
            fork_res.committed, ref_res.committed,
            "iter {iter}: commits"
        );
        assert_eq!(fork_res.output, ref_res.output, "iter {iter}: output");
        assert_eq!(fork_res.stats, ref_res.stats, "iter {iter}: stats");
        // The fork records only the post-pause suffix of the commit trace;
        // it must equal the reference trace's suffix from the snapshot's
        // commit position.
        let at = snap.committed() as usize;
        assert_eq!(
            fork_res.trace.pcs,
            ref_res.trace.pcs[at..],
            "iter {iter}: trace pcs"
        );
        assert_eq!(
            fork_res.trace.cycles,
            ref_res.trace.cycles[at..],
            "iter {iter}: trace cycles"
        );
        assert!(
            fork_final.state_eq(&ref_final),
            "iter {iter}: final simulator state diverged (pause {pause})"
        );
        assert_eq!(
            fork_checkers.detections(),
            ref_checkers.detections(),
            "iter {iter}: checker verdicts"
        );
        eprintln!(
            "iter {iter}: ok — {} cycles, paused at {pause}, stop {:?}",
            ref_res.cycles, ref_res.stop
        );
    }
    assert!(
        tested >= ITERS / 2,
        "generator produced too many trivial programs ({tested}/{ITERS} usable)"
    );
}
