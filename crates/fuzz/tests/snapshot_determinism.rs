//! Seeded snapshot/fork determinism fuzzing.
//!
//! For random generated programs (reusing the differential fuzzer's
//! generator), run the simulator to completion, then rerun it pausing at
//! a random mid-run cycle, snapshot, fork the snapshot into a *fresh*
//! simulator and continue. The forked continuation must be bit-for-bit
//! identical to the uninterrupted run: stop reason, cycle count, commit
//! trace, outputs, statistics, final architectural/microarchitectural
//! state and checker verdicts. This is the property the campaign engine's
//! snapshot-and-fork execution rests on, probed across the generator's
//! full program space (wild memory, deep loops, calls, crashes included).

use idld_core::{BitVectorChecker, CheckerSet, CounterChecker, IdldChecker};
use idld_fuzz::{generate, iter_rng, GenConfig};
use idld_rrs::NoFaults;
use idld_sim::{SimConfig, Simulator};
use rand::Rng;

const SEED: u64 = 0x51AB_5407;
const ITERS: u64 = 12;
const BUDGET: u64 = 5_000_000;

fn checkers_for(cfg: &SimConfig) -> CheckerSet {
    let mut c = CheckerSet::new();
    c.push(Box::new(IdldChecker::new(&cfg.rrs)));
    c.push(Box::new(BitVectorChecker::new(&cfg.rrs)));
    c.push(Box::new(CounterChecker::new(&cfg.rrs)));
    c
}

#[test]
fn forked_runs_match_uninterrupted_runs() {
    let mut tested = 0u64;
    for iter in 0..ITERS {
        let mut rng = iter_rng(SEED, iter);
        let gen_cfg = GenConfig::sample(&mut rng);
        let program = generate(&gen_cfg, &mut rng);
        let mut sim_cfg = SimConfig::with_width([1, 2, 4, 8][iter as usize % 4]);
        sim_cfg.mem_dep_speculation = iter % 2 == 0;

        // Uninterrupted reference.
        let mut ref_checkers = checkers_for(&sim_cfg);
        let mut ref_sim = Simulator::new(&program, sim_cfg);
        let mut ref_seg = ref_sim.begin_run(None, BUDGET);
        let ref_stop = ref_seg.run_to_end(&mut ref_sim, &mut NoFaults, &mut ref_checkers, None);
        let ref_final = ref_sim.snapshot(&ref_checkers);
        let ref_res = ref_seg.finish(&mut ref_sim, ref_stop, &mut ref_checkers);
        if ref_res.cycles < 2 {
            continue; // nothing mid-run to pause at
        }
        tested += 1;

        // Paused run: stop at a random interior cycle and snapshot.
        let pause = rng.gen_range(1..ref_res.cycles);
        let mut checkers = checkers_for(&sim_cfg);
        let mut sim = Simulator::new(&program, sim_cfg);
        let mut seg = sim.begin_run(None, BUDGET);
        let paused = seg.step_until(&mut sim, &mut NoFaults, &mut checkers, pause);
        assert_eq!(
            paused, None,
            "iter {iter}: pause {pause} < end {}",
            ref_res.cycles
        );
        let snap = sim.snapshot(&checkers);

        // Fork into a fresh simulator and run to the end.
        let mut fork_checkers = CheckerSet::new();
        let mut fork = Simulator::new(&program, sim_cfg);
        fork.restore(&snap, &mut fork_checkers);
        let mut fseg = fork.begin_run(None, BUDGET);
        let stop = fseg.run_to_end(&mut fork, &mut NoFaults, &mut fork_checkers, None);
        let fork_final = fork.snapshot(&fork_checkers);
        let fork_res = fseg.finish(&mut fork, stop, &mut fork_checkers);

        assert_eq!(fork_res.stop, ref_res.stop, "iter {iter}: stop reason");
        assert_eq!(fork_res.cycles, ref_res.cycles, "iter {iter}: cycles");
        assert_eq!(
            fork_res.committed, ref_res.committed,
            "iter {iter}: commits"
        );
        assert_eq!(fork_res.output, ref_res.output, "iter {iter}: output");
        assert_eq!(fork_res.stats, ref_res.stats, "iter {iter}: stats");
        // The fork records only the post-pause suffix of the commit trace;
        // it must equal the reference trace's suffix from the snapshot's
        // commit position.
        let at = snap.committed() as usize;
        assert_eq!(
            fork_res.trace.pcs,
            ref_res.trace.pcs[at..],
            "iter {iter}: trace pcs"
        );
        assert_eq!(
            fork_res.trace.cycles,
            ref_res.trace.cycles[at..],
            "iter {iter}: trace cycles"
        );
        assert!(
            fork_final.state_eq(&ref_final),
            "iter {iter}: final simulator state diverged (pause {pause})"
        );
        assert_eq!(
            fork_checkers.detections(),
            ref_checkers.detections(),
            "iter {iter}: checker verdicts"
        );
        eprintln!(
            "iter {iter}: ok — {} cycles, paused at {pause}, stop {:?}",
            ref_res.cycles, ref_res.stop
        );
    }
    assert!(
        tested >= ITERS / 2,
        "generator produced too many trivial programs ({tested}/{ITERS} usable)"
    );
}

/// The same fork==cold property, extended to the observability layer:
/// with a [`RingRecorder`] attached, the snapshot carries the recorder's
/// replayable state, so a forked continuation must reproduce the *exact*
/// event stream — whole-run FNV digest, total and per-kind counts, and
/// the retained ring tail — of the uninterrupted recorded run.
#[test]
fn forked_traces_match_uninterrupted_traces() {
    use idld_obs::RingRecorder;

    const TRACE_ITERS: u64 = 8;
    let mut tested = 0u64;
    for iter in 0..TRACE_ITERS {
        let mut rng = iter_rng(SEED ^ 0x000b_5e77_ace5, iter);
        let gen_cfg = GenConfig::sample(&mut rng);
        let program = generate(&gen_cfg, &mut rng);
        let mut sim_cfg = SimConfig::with_width([1, 2, 4, 8][iter as usize % 4]);
        sim_cfg.mem_dep_speculation = iter % 2 == 0;

        // Uninterrupted recorded reference. A small ring forces eviction,
        // so the digest (whole stream) and the tail (recent window) are
        // probed independently.
        let mut ref_checkers = checkers_for(&sim_cfg);
        let mut ref_rec = RingRecorder::new(512);
        let mut ref_sim = Simulator::new(&program, sim_cfg);
        let ref_res =
            ref_sim.run_observed(&mut NoFaults, &mut ref_checkers, None, BUDGET, &mut ref_rec);
        if ref_res.cycles < 2 {
            continue;
        }
        tested += 1;

        // Pause mid-run, snapshot including recorder state, fork into a
        // fresh simulator + fresh recorder, finish.
        let pause = rng.gen_range(1..ref_res.cycles);
        let mut checkers = checkers_for(&sim_cfg);
        let mut rec = RingRecorder::new(512);
        let mut sim = Simulator::new(&program, sim_cfg);
        let mut seg = sim.begin_run(None, BUDGET);
        assert_eq!(
            seg.step_until_observed(&mut sim, &mut NoFaults, &mut checkers, pause, &mut rec),
            None,
            "iter {iter}: pause {pause} < end {}",
            ref_res.cycles
        );
        let snap = sim.snapshot_observed(&checkers, &rec);

        let mut fork_checkers = CheckerSet::new();
        let mut fork_rec = RingRecorder::new(512);
        let mut fork = Simulator::new(&program, sim_cfg);
        fork.restore_observed(&snap, &mut fork_checkers, &mut fork_rec);
        let mut fseg = fork.begin_run(None, BUDGET);
        let stop = fseg.run_to_end_observed(
            &mut fork,
            &mut NoFaults,
            &mut fork_checkers,
            None,
            &mut fork_rec,
        );
        let fork_res = fseg.finish(&mut fork, stop, &mut fork_checkers);

        assert_eq!(fork_res.stop, ref_res.stop, "iter {iter}: stop reason");
        assert_eq!(fork_res.cycles, ref_res.cycles, "iter {iter}: cycles");
        assert_eq!(
            fork_rec.digest(),
            ref_rec.digest(),
            "iter {iter}: stream digest diverged (pause {pause})"
        );
        assert_eq!(
            fork_rec.total(),
            ref_rec.total(),
            "iter {iter}: event totals"
        );
        assert_eq!(
            fork_rec.counts(),
            ref_rec.counts(),
            "iter {iter}: per-kind counts"
        );
        assert!(
            fork_rec.events().eq(ref_rec.events()),
            "iter {iter}: retained event tails diverged (pause {pause})"
        );
        eprintln!(
            "iter {iter}: ok — {} events over {} cycles, paused at {pause}",
            ref_rec.total(),
            ref_res.cycles
        );
    }
    assert!(
        tested >= TRACE_ITERS / 2,
        "generator produced too many trivial programs ({tested}/{TRACE_ITERS} usable)"
    );
}
