//! Seeded assembler/disassembler round-trip property.
//!
//! Every program the fuzzer can generate must survive a trip through its
//! own text form: `parse_asm(disassemble(p))` reproduces the instruction
//! stream, data image, memory size and name exactly, and the re-emitted
//! text is a fixed point. This is the property whose violation produced
//! the `subi`/`divui`/`remui` and `i64::MIN`-immediate parser fixes (see
//! `results/fuzz/corpus/parse-*.asm`).

use idld_fuzz::gen::{generate, GenConfig};
use idld_isa::{disassemble, parse_asm};
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn generated_programs_round_trip_through_text() {
    for seed in 0..200u64 {
        let mut rng = SmallRng::seed_from_u64(0x1d1d_0000 ^ seed);
        let cfg = GenConfig::sample(&mut rng);
        let mut p = generate(&cfg, &mut rng);
        p.name = format!("rt-{seed}");
        let text = disassemble(&p);
        let q = parse_asm(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(p.insts, q.insts, "seed {seed}");
        assert_eq!(p.image, q.image, "seed {seed}");
        assert_eq!(p.mem_size, q.mem_size, "seed {seed}");
        assert_eq!(p.name, q.name, "seed {seed}");
        assert_eq!(
            text,
            disassemble(&q),
            "seed {seed}: text is not a fixed point"
        );
    }
}
