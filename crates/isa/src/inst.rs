//! Instruction definitions and static metadata queries.

use crate::reg::ArchReg;
use std::fmt;

/// Binary ALU operation selector, shared by the register and immediate forms.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AluOp {
    /// Wrapping 64-bit addition.
    Add,
    /// Wrapping 64-bit subtraction.
    Sub,
    /// Wrapping 64-bit multiplication (low 64 bits).
    Mul,
    /// Unsigned division; division by zero yields `u64::MAX` (RISC-V style —
    /// no architectural fault, keeping the fault model focused on memory and
    /// control flow as in the paper's Crash class).
    Divu,
    /// Unsigned remainder; remainder by zero yields the dividend.
    Remu,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (shift amount masked to 6 bits).
    Sll,
    /// Logical shift right (shift amount masked to 6 bits).
    Srl,
    /// Arithmetic shift right (shift amount masked to 6 bits).
    Sra,
    /// Signed set-less-than (result 0 or 1).
    Slt,
    /// Unsigned set-less-than (result 0 or 1).
    Sltu,
}

impl AluOp {
    /// Applies the operation to two 64-bit operand values.
    #[inline]
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Divu => a.checked_div(b).unwrap_or(u64::MAX),
            AluOp::Remu => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a << (b & 63),
            AluOp::Srl => a >> (b & 63),
            AluOp::Sra => ((a as i64) >> (b & 63)) as u64,
            AluOp::Slt => ((a as i64) < (b as i64)) as u64,
            AluOp::Sltu => (a < b) as u64,
        }
    }

    /// True for the long-latency multiply/divide class (used by the
    /// out-of-order simulator's functional-unit latency table).
    #[inline]
    pub fn is_long_latency(self) -> bool {
        matches!(self, AluOp::Mul | AluOp::Divu | AluOp::Remu)
    }
}

/// Branch comparison condition.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BrCond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

impl BrCond {
    /// Evaluates the condition on two 64-bit operand values.
    #[inline]
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            BrCond::Eq => a == b,
            BrCond::Ne => a != b,
            BrCond::Lt => (a as i64) < (b as i64),
            BrCond::Ge => (a as i64) >= (b as i64),
            BrCond::Ltu => a < b,
            BrCond::Geu => a >= b,
        }
    }
}

/// One tiny-RISC instruction.
///
/// Program counters are *instruction indices* into [`crate::Program::insts`]
/// rather than byte addresses; data memory is byte-addressed separately.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Inst {
    /// `rd = op(rs1, rs2)`.
    Alu {
        op: AluOp,
        rd: ArchReg,
        rs1: ArchReg,
        rs2: ArchReg,
    },
    /// `rd = op(rs1, imm)`.
    AluI {
        op: AluOp,
        rd: ArchReg,
        rs1: ArchReg,
        imm: i64,
    },
    /// `rd = imm` (full 64-bit immediate load).
    Li { rd: ArchReg, imm: i64 },
    /// `rd = mem64[rs1 + imm]`.
    Ld { rd: ArchReg, rs1: ArchReg, imm: i64 },
    /// `rd = zext(mem32[rs1 + imm])`.
    Ldw { rd: ArchReg, rs1: ArchReg, imm: i64 },
    /// `rd = zext(mem8[rs1 + imm])`.
    Ldb { rd: ArchReg, rs1: ArchReg, imm: i64 },
    /// `mem64[rs1 + imm] = rs2`.
    St {
        rs1: ArchReg,
        rs2: ArchReg,
        imm: i64,
    },
    /// `mem32[rs1 + imm] = rs2[31:0]`.
    Stw {
        rs1: ArchReg,
        rs2: ArchReg,
        imm: i64,
    },
    /// `mem8[rs1 + imm] = rs2[7:0]`.
    Stb {
        rs1: ArchReg,
        rs2: ArchReg,
        imm: i64,
    },
    /// Conditional branch to instruction index `target`.
    Br {
        cond: BrCond,
        rs1: ArchReg,
        rs2: ArchReg,
        target: usize,
    },
    /// Unconditional jump to `target`; `rd =` return pc (pc+1).
    Jal { rd: ArchReg, target: usize },
    /// Indirect jump to instruction index `rs1 + imm`; `rd = pc + 1`.
    Jalr { rd: ArchReg, rs1: ArchReg, imm: i64 },
    /// Appends the value of `rs1` to the program output stream.
    Out { rs1: ArchReg },
    /// Normal program termination.
    Halt,
    /// No operation.
    Nop,
}

/// Coarse classification of an instruction, used by the simulator to steer
/// instructions to functional units and queues.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum InstKind {
    /// Single-cycle integer ALU operation (including `Li` and `Nop`).
    Alu,
    /// Long-latency multiply/divide.
    MulDiv,
    /// Memory load (any width).
    Load,
    /// Memory store (any width).
    Store,
    /// Conditional branch.
    Branch,
    /// Direct jump with link.
    Jump,
    /// Indirect jump with link.
    JumpInd,
    /// Output-stream append.
    Out,
    /// Halt.
    Halt,
}

impl Inst {
    /// The destination architectural register, if the instruction writes one.
    ///
    /// This is the *Ldst* of the paper: instructions returning `Some` consume
    /// a physical register from the free list when renamed.
    #[inline]
    pub fn dest(&self) -> Option<ArchReg> {
        match *self {
            Inst::Alu { rd, .. }
            | Inst::AluI { rd, .. }
            | Inst::Li { rd, .. }
            | Inst::Ld { rd, .. }
            | Inst::Ldw { rd, .. }
            | Inst::Ldb { rd, .. }
            | Inst::Jal { rd, .. }
            | Inst::Jalr { rd, .. } => Some(rd),
            _ => None,
        }
    }

    /// The source architectural registers (up to two).
    #[inline]
    pub fn sources(&self) -> [Option<ArchReg>; 2] {
        match *self {
            Inst::Alu { rs1, rs2, .. } => [Some(rs1), Some(rs2)],
            Inst::AluI { rs1, .. } => [Some(rs1), None],
            Inst::Li { .. } => [None, None],
            Inst::Ld { rs1, .. } | Inst::Ldw { rs1, .. } | Inst::Ldb { rs1, .. } => {
                [Some(rs1), None]
            }
            Inst::St { rs1, rs2, .. } | Inst::Stw { rs1, rs2, .. } | Inst::Stb { rs1, rs2, .. } => {
                [Some(rs1), Some(rs2)]
            }
            Inst::Br { rs1, rs2, .. } => [Some(rs1), Some(rs2)],
            Inst::Jal { .. } => [None, None],
            Inst::Jalr { rs1, .. } => [Some(rs1), None],
            Inst::Out { rs1 } => [Some(rs1), None],
            Inst::Halt | Inst::Nop => [None, None],
        }
    }

    /// The instruction's [`InstKind`].
    #[inline]
    pub fn kind(&self) -> InstKind {
        match *self {
            Inst::Alu { op, .. } | Inst::AluI { op, .. } => {
                if op.is_long_latency() {
                    InstKind::MulDiv
                } else {
                    InstKind::Alu
                }
            }
            Inst::Li { .. } | Inst::Nop => InstKind::Alu,
            Inst::Ld { .. } | Inst::Ldw { .. } | Inst::Ldb { .. } => InstKind::Load,
            Inst::St { .. } | Inst::Stw { .. } | Inst::Stb { .. } => InstKind::Store,
            Inst::Br { .. } => InstKind::Branch,
            Inst::Jal { .. } => InstKind::Jump,
            Inst::Jalr { .. } => InstKind::JumpInd,
            Inst::Out { .. } => InstKind::Out,
            Inst::Halt => InstKind::Halt,
        }
    }

    /// True if the instruction can redirect control flow.
    #[inline]
    pub fn is_control(&self) -> bool {
        matches!(
            self.kind(),
            InstKind::Branch | InstKind::Jump | InstKind::JumpInd
        )
    }

    /// The access width in bytes for loads and stores, `None` otherwise.
    #[inline]
    pub fn mem_width(&self) -> Option<usize> {
        match *self {
            Inst::Ld { .. } | Inst::St { .. } => Some(8),
            Inst::Ldw { .. } | Inst::Stw { .. } => Some(4),
            Inst::Ldb { .. } | Inst::Stb { .. } => Some(1),
            _ => None,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Alu { op, rd, rs1, rs2 } => write!(f, "{op:?} {rd}, {rs1}, {rs2}"),
            Inst::AluI { op, rd, rs1, imm } => write!(f, "{op:?}i {rd}, {rs1}, {imm}"),
            Inst::Li { rd, imm } => write!(f, "li {rd}, {imm}"),
            Inst::Ld { rd, rs1, imm } => write!(f, "ld {rd}, {imm}({rs1})"),
            Inst::Ldw { rd, rs1, imm } => write!(f, "ldw {rd}, {imm}({rs1})"),
            Inst::Ldb { rd, rs1, imm } => write!(f, "ldb {rd}, {imm}({rs1})"),
            Inst::St { rs1, rs2, imm } => write!(f, "st {rs2}, {imm}({rs1})"),
            Inst::Stw { rs1, rs2, imm } => write!(f, "stw {rs2}, {imm}({rs1})"),
            Inst::Stb { rs1, rs2, imm } => write!(f, "stb {rs2}, {imm}({rs1})"),
            Inst::Br {
                cond,
                rs1,
                rs2,
                target,
            } => {
                write!(f, "b{cond:?} {rs1}, {rs2}, @{target}")
            }
            Inst::Jal { rd, target } => write!(f, "jal {rd}, @{target}"),
            Inst::Jalr { rd, rs1, imm } => write!(f, "jalr {rd}, {rs1}, {imm}"),
            Inst::Out { rs1 } => write!(f, "out {rs1}"),
            Inst::Halt => write!(f, "halt"),
            Inst::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::r;

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(u64::MAX, 1), 0);
        assert_eq!(AluOp::Sub.apply(0, 1), u64::MAX);
        assert_eq!(AluOp::Mul.apply(1 << 63, 2), 0);
        assert_eq!(AluOp::Divu.apply(7, 2), 3);
        assert_eq!(AluOp::Divu.apply(7, 0), u64::MAX);
        assert_eq!(AluOp::Remu.apply(7, 2), 1);
        assert_eq!(AluOp::Remu.apply(7, 0), 7);
        assert_eq!(AluOp::Sll.apply(1, 65), 2, "shift amount masked to 6 bits");
        assert_eq!(AluOp::Sra.apply(u64::MAX, 5), u64::MAX);
        assert_eq!(AluOp::Srl.apply(u64::MAX, 63), 1);
        assert_eq!(AluOp::Slt.apply(u64::MAX, 0), 1, "-1 < 0 signed");
        assert_eq!(AluOp::Sltu.apply(u64::MAX, 0), 0);
    }

    #[test]
    fn branch_conditions() {
        assert!(BrCond::Eq.eval(3, 3));
        assert!(BrCond::Ne.eval(3, 4));
        assert!(BrCond::Lt.eval(u64::MAX, 0));
        assert!(!BrCond::Ltu.eval(u64::MAX, 0));
        assert!(BrCond::Ge.eval(0, u64::MAX));
        assert!(BrCond::Geu.eval(u64::MAX, 0));
    }

    #[test]
    fn dest_and_sources() {
        let i = Inst::Alu {
            op: AluOp::Add,
            rd: r(1),
            rs1: r(2),
            rs2: r(3),
        };
        assert_eq!(i.dest(), Some(r(1)));
        assert_eq!(i.sources(), [Some(r(2)), Some(r(3))]);

        let st = Inst::St {
            rs1: r(4),
            rs2: r(5),
            imm: 8,
        };
        assert_eq!(st.dest(), None);
        assert_eq!(st.sources(), [Some(r(4)), Some(r(5))]);

        let jal = Inst::Jal {
            rd: r(1),
            target: 0,
        };
        assert_eq!(jal.dest(), Some(r(1)));
        assert_eq!(jal.sources(), [None, None]);
    }

    #[test]
    fn kinds() {
        assert_eq!(Inst::Li { rd: r(0), imm: 0 }.kind(), InstKind::Alu);
        assert_eq!(
            Inst::Alu {
                op: AluOp::Mul,
                rd: r(0),
                rs1: r(0),
                rs2: r(0)
            }
            .kind(),
            InstKind::MulDiv
        );
        assert_eq!(
            Inst::Ld {
                rd: r(0),
                rs1: r(0),
                imm: 0
            }
            .kind(),
            InstKind::Load
        );
        assert_eq!(Inst::Halt.kind(), InstKind::Halt);
        assert!(Inst::Jalr {
            rd: r(0),
            rs1: r(0),
            imm: 0
        }
        .is_control());
        assert!(!Inst::Nop.is_control());
    }

    #[test]
    fn mem_widths() {
        assert_eq!(
            Inst::Ld {
                rd: r(0),
                rs1: r(0),
                imm: 0
            }
            .mem_width(),
            Some(8)
        );
        assert_eq!(
            Inst::Stw {
                rs1: r(0),
                rs2: r(0),
                imm: 0
            }
            .mem_width(),
            Some(4)
        );
        assert_eq!(
            Inst::Ldb {
                rd: r(0),
                rs1: r(0),
                imm: 0
            }
            .mem_width(),
            Some(1)
        );
        assert_eq!(Inst::Nop.mem_width(), None);
    }

    #[test]
    fn display_is_nonempty() {
        let insts = [
            Inst::Alu {
                op: AluOp::Add,
                rd: r(1),
                rs1: r(2),
                rs2: r(3),
            },
            Inst::Li { rd: r(1), imm: -7 },
            Inst::Br {
                cond: BrCond::Eq,
                rs1: r(1),
                rs2: r(2),
                target: 9,
            },
            Inst::Halt,
        ];
        for i in &insts {
            assert!(!i.to_string().is_empty());
        }
    }
}
