//! Pre-decoded basic-block execution engine for the architectural emulator.
//!
//! The single-step interpreter pays a fetch (bounds-checked `Vec` read), a
//! 15-arm `Inst` match, per-operand `ArchReg` index resolution and a pc/step
//! writeback for *every* instruction. Once functional fast-forward made the
//! emulator the hot path of every forked run, that dispatch overhead — not
//! the architectural work — dominates campaign wall-clock, exactly the
//! regime gem5 hits when atomic fast-forwarding confines cycle accuracy to
//! a window.
//!
//! This module removes the per-instruction overhead the way dynamic binary
//! translators do, one level down from JIT: at program load the instruction
//! stream is partitioned into **basic blocks** (leaders at pc 0, at every
//! static branch/jump target, and at the fall-through after every control
//! instruction or halt), and each block is translated once into a flat,
//! branch-free array of [`MicroOp`]s with
//!
//! * register numbers pre-resolved to raw indices,
//! * memory operands pre-specialized by static access width
//!   (`Ld8`/`Ld4`/`Ld1`, `St8`/`St4`/`St1`), and
//! * the block's control instruction lifted into a [`BlockEnd`] terminator
//!   with its link value and static successors precomputed.
//!
//! Execution dispatches whole blocks from a cache keyed on entry pc
//! ([`BlockEngine::lookup`]), chaining directly from block to block for
//! every statically resolved successor — fall-through, `jal`, and both
//! `br` directions (two-exit chaining) — without returning to the cache. Within a block there is no fetch, no pc update and no step
//! check; pc and step count are reconstructed exactly at the terminator (or
//! at a faulting micro-op, whose position in the block determines them).
//!
//! The engine never executes a block whose full step count would overrun
//! the caller's budget; the driver in [`crate::emu`] falls back to the
//! single-step interpreter inside that final partial block (the exact-stop
//! hand-off of `run_to_step`), for indirect `jalr` targets that miss the
//! cache (including mid-block pcs), and for off-end pcs — so architectural
//! state, fault pcs and step counts are bit-identical to the single-step
//! interpreter at every observable point.

use crate::inst::{AluOp, BrCond, Inst};
use crate::program::Program;

/// Sentinel block id: "no pre-resolved successor" (indirect target,
/// off-range target, or off-end fall-through).
pub(crate) const NO_BLOCK: u32 = u32::MAX;

/// One pre-decoded, non-control instruction: operand registers resolved to
/// raw indices and memory widths baked into the variant.
#[derive(Clone, Copy, Debug)]
pub(crate) enum MicroOp {
    /// `regs[rd] = op(regs[rs1], regs[rs2])`.
    Alu { op: AluOp, rd: u8, rs1: u8, rs2: u8 },
    /// `regs[rd] = op(regs[rs1], imm)`.
    AluI {
        op: AluOp,
        rd: u8,
        rs1: u8,
        imm: i64,
    },
    /// `regs[rd] = imm`.
    Li { rd: u8, imm: i64 },
    /// 8-byte load.
    Ld8 { rd: u8, rs1: u8, imm: i64 },
    /// 4-byte zero-extending load.
    Ld4 { rd: u8, rs1: u8, imm: i64 },
    /// 1-byte zero-extending load.
    Ld1 { rd: u8, rs1: u8, imm: i64 },
    /// 8-byte store.
    St8 { rs1: u8, rs2: u8, imm: i64 },
    /// 4-byte store.
    St4 { rs1: u8, rs2: u8, imm: i64 },
    /// 1-byte store.
    St1 { rs1: u8, rs2: u8, imm: i64 },
    /// Output-stream append.
    Out { rs1: u8 },
    /// No operation (still a step).
    Nop,
}

/// How a block ends. Terminators that are themselves instructions (all but
/// `Fall`) count one step; link values and static successor pcs are
/// precomputed at translation time, successor *block ids* in a second
/// resolution pass once every block exists.
#[derive(Clone, Copy, Debug)]
pub(crate) enum BlockEnd {
    /// Conditional branch: both successor pcs are statically known, so both
    /// edges carry pre-resolved block ids — the direction is decided at run
    /// time, but whichever way it goes the next block dispatches without a
    /// cache lookup (QEMU-style two-exit chaining; hot loops become
    /// block-to-itself dispatches).
    Br {
        cond: BrCond,
        rs1: u8,
        rs2: u8,
        taken_pc: usize,
        fall_pc: usize,
        taken_blk: u32,
        fall_blk: u32,
    },
    /// Direct jump with link: unconditional, chained.
    Jal {
        rd: u8,
        link: u64,
        target_pc: usize,
        target_blk: u32,
    },
    /// Indirect jump with link: target read from `regs[rs1] + imm` at run
    /// time, clamped like the single-step interpreter; never chained.
    Jalr {
        rd: u8,
        rs1: u8,
        imm: i64,
        link: u64,
    },
    /// Normal termination; pc stays at the halt instruction.
    Halt,
    /// Fall-through into the next leader (not an instruction, no step).
    /// `next_blk` is [`NO_BLOCK`] when the block runs off the end of the
    /// program; the next dispatch then misses the cache and the single-step
    /// interpreter raises the architectural `InvalidPc` fault.
    Fall { next_pc: usize, next_blk: u32 },
}

/// One translated basic block.
#[derive(Clone, Debug)]
pub(crate) struct Block {
    /// Entry pc (the leader).
    pub entry: usize,
    /// Pre-decoded non-control body, in program order.
    pub ops: Box<[MicroOp]>,
    /// Terminator.
    pub end: BlockEnd,
    /// Steps a full execution of this block retires: `ops.len()` plus one
    /// for every terminator except `Fall`.
    pub total_steps: u64,
}

/// Dispatch counters, cumulative over the engine's lifetime. Reported per
/// campaign in `BENCH_campaign.json`; like wall-clock they depend on
/// scheduling (worker cache reuse), not on the deterministic record stream.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct BlockStats {
    /// Blocks translated at program load.
    pub blocks_compiled: u64,
    /// Dispatches served by the entry-pc cache.
    pub block_hits: u64,
    /// Dispatches served by direct block-to-block chaining: any statically
    /// resolved successor edge (fall-through, `jal`, and either `br`
    /// direction) taken without returning to the entry-pc cache.
    pub chained_dispatches: u64,
    /// Steps retired inside fully-executed blocks (excludes single-step
    /// fallback steps).
    pub block_steps: u64,
}

impl BlockStats {
    /// Total whole-block dispatches.
    #[inline]
    pub fn dispatches(&self) -> u64 {
        self.block_hits + self.chained_dispatches
    }

    /// Mean steps retired per whole-block dispatch (`0.0` before the first
    /// dispatch) — the amortization factor of the per-dispatch overhead.
    pub fn steps_per_dispatch(&self) -> f64 {
        let d = self.dispatches();
        if d == 0 {
            0.0
        } else {
            self.block_steps as f64 / d as f64
        }
    }

    /// Field-wise sum, for per-campaign aggregation.
    pub fn add(&mut self, other: &BlockStats) {
        self.blocks_compiled += other.blocks_compiled;
        self.block_hits += other.block_hits;
        self.chained_dispatches += other.chained_dispatches;
        self.block_steps += other.block_steps;
    }

    /// Field-wise difference against an `earlier` reading of the same
    /// cumulative counters (the per-run harvest of a cached emulator).
    pub fn since(&self, earlier: &BlockStats) -> BlockStats {
        BlockStats {
            blocks_compiled: self.blocks_compiled - earlier.blocks_compiled,
            block_hits: self.block_hits - earlier.block_hits,
            chained_dispatches: self.chained_dispatches - earlier.chained_dispatches,
            block_steps: self.block_steps - earlier.block_steps,
        }
    }
}

/// The block cache of one program: every translated block plus a dense
/// entry-pc → block id index.
#[derive(Clone, Debug)]
pub(crate) struct BlockEngine {
    pub blocks: Vec<Block>,
    /// `by_pc[pc]` is the id of the block *entered* at `pc`, or
    /// [`NO_BLOCK`] for mid-block pcs.
    by_pc: Vec<u32>,
    pub stats: BlockStats,
}

impl BlockEngine {
    /// Translates `program` into basic blocks.
    pub fn compile(program: &Program) -> Self {
        let n = program.insts.len();
        // Leaders: pc 0, every static control target, every fall-through
        // after a control instruction or halt.
        let mut leader = vec![false; n];
        let mark = |leader: &mut Vec<bool>, pc: usize| {
            if pc < n {
                leader[pc] = true;
            }
        };
        mark(&mut leader, 0);
        for (pc, inst) in program.insts.iter().enumerate() {
            match *inst {
                Inst::Br { target, .. } | Inst::Jal { target, .. } => {
                    mark(&mut leader, target);
                    mark(&mut leader, pc + 1);
                }
                Inst::Jalr { .. } | Inst::Halt => mark(&mut leader, pc + 1),
                _ => {}
            }
        }

        let mut blocks = Vec::new();
        let mut by_pc = vec![NO_BLOCK; n];
        for entry in 0..n {
            if !leader[entry] {
                continue;
            }
            let mut ops = Vec::new();
            let mut pc = entry;
            let end = loop {
                match program.insts[pc] {
                    Inst::Br {
                        cond,
                        rs1,
                        rs2,
                        target,
                    } => {
                        break BlockEnd::Br {
                            cond,
                            rs1: rs1.index() as u8,
                            rs2: rs2.index() as u8,
                            taken_pc: target,
                            fall_pc: pc + 1,
                            taken_blk: NO_BLOCK,
                            fall_blk: NO_BLOCK,
                        }
                    }
                    Inst::Jal { rd, target } => {
                        break BlockEnd::Jal {
                            rd: rd.index() as u8,
                            link: (pc + 1) as u64,
                            target_pc: target,
                            target_blk: NO_BLOCK,
                        }
                    }
                    Inst::Jalr { rd, rs1, imm } => {
                        break BlockEnd::Jalr {
                            rd: rd.index() as u8,
                            rs1: rs1.index() as u8,
                            imm,
                            link: (pc + 1) as u64,
                        }
                    }
                    Inst::Halt => break BlockEnd::Halt,
                    inst => ops.push(micro_op(inst)),
                }
                pc += 1;
                if pc >= n || leader[pc] {
                    break BlockEnd::Fall {
                        next_pc: pc,
                        next_blk: NO_BLOCK,
                    };
                }
            };
            let total_steps = ops.len() as u64 + u64::from(!matches!(end, BlockEnd::Fall { .. }));
            by_pc[entry] = blocks.len() as u32;
            blocks.push(Block {
                entry,
                ops: ops.into_boxed_slice(),
                end,
                total_steps,
            });
        }

        // Second pass: resolve static successors to block ids for chaining.
        // Br/Jal targets in range are leaders by construction; an off-range
        // target or off-end fall-through stays NO_BLOCK and the next
        // dispatch falls back to the single-step interpreter (which raises
        // the architectural fault).
        let resolve = |pc: usize| by_pc.get(pc).copied().unwrap_or(NO_BLOCK);
        for b in &mut blocks {
            match &mut b.end {
                BlockEnd::Jal {
                    target_pc,
                    target_blk,
                    ..
                } => *target_blk = resolve(*target_pc),
                BlockEnd::Fall { next_pc, next_blk } => *next_blk = resolve(*next_pc),
                BlockEnd::Br {
                    taken_pc,
                    fall_pc,
                    taken_blk,
                    fall_blk,
                    ..
                } => {
                    *taken_blk = resolve(*taken_pc);
                    *fall_blk = resolve(*fall_pc);
                }
                _ => {}
            }
        }

        let stats = BlockStats {
            blocks_compiled: blocks.len() as u64,
            ..BlockStats::default()
        };
        BlockEngine {
            blocks,
            by_pc,
            stats,
        }
    }

    /// The block entered at `pc`, if `pc` is a block leader.
    #[inline]
    pub fn lookup(&self, pc: usize) -> Option<u32> {
        match self.by_pc.get(pc) {
            Some(&b) if b != NO_BLOCK => Some(b),
            _ => None,
        }
    }
}

/// Pre-decodes one non-control instruction.
fn micro_op(inst: Inst) -> MicroOp {
    let r = |r: crate::reg::ArchReg| r.index() as u8;
    match inst {
        Inst::Alu { op, rd, rs1, rs2 } => MicroOp::Alu {
            op,
            rd: r(rd),
            rs1: r(rs1),
            rs2: r(rs2),
        },
        Inst::AluI { op, rd, rs1, imm } => MicroOp::AluI {
            op,
            rd: r(rd),
            rs1: r(rs1),
            imm,
        },
        Inst::Li { rd, imm } => MicroOp::Li { rd: r(rd), imm },
        Inst::Ld { rd, rs1, imm } => MicroOp::Ld8 {
            rd: r(rd),
            rs1: r(rs1),
            imm,
        },
        Inst::Ldw { rd, rs1, imm } => MicroOp::Ld4 {
            rd: r(rd),
            rs1: r(rs1),
            imm,
        },
        Inst::Ldb { rd, rs1, imm } => MicroOp::Ld1 {
            rd: r(rd),
            rs1: r(rs1),
            imm,
        },
        Inst::St { rs1, rs2, imm } => MicroOp::St8 {
            rs1: r(rs1),
            rs2: r(rs2),
            imm,
        },
        Inst::Stw { rs1, rs2, imm } => MicroOp::St4 {
            rs1: r(rs1),
            rs2: r(rs2),
            imm,
        },
        Inst::Stb { rs1, rs2, imm } => MicroOp::St1 {
            rs1: r(rs1),
            rs2: r(rs2),
            imm,
        },
        Inst::Out { rs1 } => MicroOp::Out { rs1: r(rs1) },
        Inst::Nop => MicroOp::Nop,
        Inst::Br { .. } | Inst::Jal { .. } | Inst::Jalr { .. } | Inst::Halt => {
            unreachable!("control instructions terminate blocks")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::reg::r;

    #[test]
    fn leaders_partition_the_stream() {
        // 0: li        <- leader (pc 0)
        // 1: li
        // 2: add       <- leader (branch target "loop")
        // 3: blt -> 2
        // 4: out       <- leader (fall-through after branch)
        // 5: halt
        let mut a = Asm::new();
        a.li(r(1), 0).li(r(2), 3);
        a.label("loop");
        a.add(r(1), r(1), r(2));
        a.blt(r(1), r(2), "loop");
        a.out(r(1)).halt();
        let engine = BlockEngine::compile(&a.finish());
        let entries: Vec<usize> = engine.blocks.iter().map(|b| b.entry).collect();
        assert_eq!(entries, vec![0, 2, 4]);
        assert_eq!(engine.stats.blocks_compiled, 3);
        // Block at 2 is `add; blt`: one op plus the branch terminator.
        let b = &engine.blocks[engine.lookup(2).unwrap() as usize];
        assert_eq!(b.ops.len(), 1);
        assert_eq!(b.total_steps, 2);
        assert!(matches!(
            b.end,
            BlockEnd::Br {
                taken_pc: 2,
                fall_pc: 4,
                ..
            }
        ));
        // Mid-block pcs are not in the cache.
        assert_eq!(engine.lookup(1), None);
        assert_eq!(engine.lookup(5), None);
    }

    #[test]
    fn fall_through_chains_and_off_end_does_not() {
        // A branch target mid-stream splits a straight-line run into two
        // blocks linked by a chained fall-through edge.
        let p = Program::from_insts(vec![
            Inst::Li { rd: r(1), imm: 1 }, // 0: leader (pc 0)
            Inst::Li { rd: r(2), imm: 2 }, // 1: leader (branch target)
            Inst::Br {
                cond: crate::inst::BrCond::Eq,
                rs1: r(1),
                rs2: r(2),
                target: 1,
            }, // 2
            Inst::Nop,                     // 3: leader; runs off the end (no trailing halt)
        ]);
        let engine = BlockEngine::compile(&p);
        let first = &engine.blocks[engine.lookup(0).unwrap() as usize];
        match first.end {
            BlockEnd::Fall { next_pc, next_blk } => {
                assert_eq!(next_pc, 1);
                assert_eq!(next_blk, engine.lookup(1).unwrap());
            }
            ref other => panic!("expected fall-through, got {other:?}"),
        }
        // The last block runs off the end: fall edge stays unresolved so
        // the dispatcher falls back to single-step and faults exactly there.
        let last = engine.blocks.last().unwrap();
        match last.end {
            BlockEnd::Fall { next_pc, next_blk } => {
                assert_eq!(next_pc, p.insts.len());
                assert_eq!(next_blk, NO_BLOCK);
            }
            ref other => panic!("expected off-end fall-through, got {other:?}"),
        }
    }

    #[test]
    fn jal_terminator_precomputes_link_and_chain() {
        let mut a = Asm::new();
        a.li(r(1), 7); // 0
        a.jal(r(2), "fn"); // 1
        a.halt(); // 2 (leader: fall-through after jal)
        a.label("fn");
        a.halt(); // 3 (leader: jal target)
        let engine = BlockEngine::compile(&a.finish());
        let b = &engine.blocks[engine.lookup(0).unwrap() as usize];
        match b.end {
            BlockEnd::Jal {
                link,
                target_pc,
                target_blk,
                ..
            } => {
                assert_eq!(link, 2, "link is the jal's pc + 1");
                assert_eq!(target_pc, 3);
                assert_eq!(target_blk, engine.lookup(3).unwrap());
            }
            ref other => panic!("expected jal terminator, got {other:?}"),
        }
        assert_eq!(b.total_steps, 2, "li plus the jal itself");
    }

    #[test]
    fn empty_program_compiles_to_no_blocks() {
        let engine = BlockEngine::compile(&Program::from_insts(vec![]));
        assert!(engine.blocks.is_empty());
        assert_eq!(engine.lookup(0), None);
    }
}
