//! In-order architectural emulator — the golden reference model.
//!
//! The emulator executes programs with precise architectural semantics and no
//! microarchitectural state. It serves two roles in the reproduction:
//!
//! 1. validating workloads against native Rust reference implementations, and
//! 2. cross-checking that the out-of-order simulator (with its full register
//!    renaming subsystem) is architecturally equivalent when no bug is
//!    injected.

use crate::block::{BlockEnd, BlockEngine, BlockStats, MicroOp, NO_BLOCK};
use crate::inst::Inst;
use crate::mem::{MemFault, Memory};
use crate::program::Program;
use crate::reg::{ArchReg, NUM_ARCH_REGS};
use std::fmt;

/// An architectural fault raised during emulation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EmuFault {
    /// A data memory access out of bounds.
    Mem(MemFault),
    /// Control transferred to an invalid instruction index.
    InvalidPc(usize),
}

impl fmt::Display for EmuFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuFault::Mem(m) => write!(f, "{m}"),
            EmuFault::InvalidPc(pc) => write!(f, "invalid pc: {pc}"),
        }
    }
}

impl std::error::Error for EmuFault {}

impl From<MemFault> for EmuFault {
    fn from(m: MemFault) -> Self {
        EmuFault::Mem(m)
    }
}

/// Why a run stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StopReason {
    /// The program executed [`Inst::Halt`].
    Halted,
    /// An architectural fault occurred.
    Fault(EmuFault),
    /// The step budget given to [`Emulator::run`] was exhausted.
    StepLimit,
}

/// The architectural outcome of a run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EmuResult {
    /// Why execution stopped.
    pub stop: StopReason,
    /// Values emitted by [`Inst::Out`], in program order.
    pub output: Vec<u64>,
    /// Number of instructions executed (committed).
    pub steps: u64,
}

/// The architectural emulator. Create one per run with [`Emulator::new`]
/// (block-cached interpreter) or [`Emulator::single_step`] (the plain
/// per-instruction interpreter); the two are bit-identical at every
/// observable point — registers, memory, output, pc, step count and
/// fault — and differ only in throughput.
#[derive(Clone, Debug)]
pub struct Emulator {
    regs: [u64; NUM_ARCH_REGS],
    pc: usize,
    mem: Memory,
    output: Vec<u64>,
    steps: u64,
    program: Program,
    /// The pre-decoded basic-block engine (see [`crate::block`]), or
    /// `None` for the pure single-step interpreter.
    engine: Option<BlockEngine>,
}

/// The result of a single architectural step.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepOutcome {
    /// The instruction executed; execution continues.
    Continue,
    /// The instruction was `Halt`.
    Halted,
    /// The instruction faulted.
    Fault(EmuFault),
}

impl Emulator {
    /// Creates an emulator with fresh memory built from the program image,
    /// pre-decoding the instruction stream into the basic-block engine.
    pub fn new(program: &Program) -> Self {
        Self::with_block_engine(program, true)
    }

    /// Creates a pure single-step emulator (no block cache): the reference
    /// interpreter the block engine is proven bit-identical against.
    pub fn single_step(program: &Program) -> Self {
        Self::with_block_engine(program, false)
    }

    /// Creates an emulator with the block engine explicitly on or off
    /// (`IDLD_EMU_BLOCK` threads through here).
    pub fn with_block_engine(program: &Program, block: bool) -> Self {
        Emulator {
            regs: [0; NUM_ARCH_REGS],
            pc: 0,
            mem: program.build_memory(),
            output: Vec::new(),
            steps: 0,
            engine: block.then(|| BlockEngine::compile(program)),
            program: program.clone(),
        }
    }

    /// True when this emulator dispatches through the block cache.
    #[inline]
    pub fn block_engine_enabled(&self) -> bool {
        self.engine.is_some()
    }

    /// Cumulative block-engine dispatch counters (all zero for a
    /// [`single_step`](Emulator::single_step) emulator).
    #[inline]
    pub fn block_stats(&self) -> BlockStats {
        self.engine.as_ref().map(|e| e.stats).unwrap_or_default()
    }

    /// Current program counter (instruction index).
    #[inline]
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Reads an architectural register.
    #[inline]
    pub fn reg(&self, r: ArchReg) -> u64 {
        self.regs[r.index()]
    }

    /// The whole architectural register file, indexed by register number.
    /// The fast-forward hand-off gate compares this wholesale against the
    /// out-of-order model's retirement-RAT view.
    #[inline]
    pub fn regs(&self) -> &[u64; NUM_ARCH_REGS] {
        &self.regs
    }

    /// Writes an architectural register (for test setup).
    #[inline]
    pub fn set_reg(&mut self, r: ArchReg, v: u64) {
        self.regs[r.index()] = v;
    }

    /// The data memory.
    #[inline]
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// The output stream so far.
    #[inline]
    pub fn output(&self) -> &[u64] {
        &self.output
    }

    /// Number of instructions executed so far.
    #[inline]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Executes a single instruction.
    pub fn step(&mut self) -> StepOutcome {
        let Some(inst) = self.program.fetch(self.pc) else {
            return StepOutcome::Fault(EmuFault::InvalidPc(self.pc));
        };
        self.steps += 1;
        let mut next_pc = self.pc + 1;
        match inst {
            Inst::Alu { op, rd, rs1, rs2 } => {
                self.regs[rd.index()] = op.apply(self.regs[rs1.index()], self.regs[rs2.index()]);
            }
            Inst::AluI { op, rd, rs1, imm } => {
                self.regs[rd.index()] = op.apply(self.regs[rs1.index()], imm as u64);
            }
            Inst::Li { rd, imm } => self.regs[rd.index()] = imm as u64,
            Inst::Ld { rd, rs1, imm } | Inst::Ldw { rd, rs1, imm } | Inst::Ldb { rd, rs1, imm } => {
                let width = inst.mem_width().expect("load has a width");
                let addr = self.regs[rs1.index()].wrapping_add(imm as u64);
                match self.mem.load(addr, width) {
                    Ok(v) => self.regs[rd.index()] = v,
                    Err(e) => return StepOutcome::Fault(e.into()),
                }
            }
            Inst::St { rs1, rs2, imm }
            | Inst::Stw { rs1, rs2, imm }
            | Inst::Stb { rs1, rs2, imm } => {
                let width = inst.mem_width().expect("store has a width");
                let addr = self.regs[rs1.index()].wrapping_add(imm as u64);
                if let Err(e) = self.mem.store(addr, width, self.regs[rs2.index()]) {
                    return StepOutcome::Fault(e.into());
                }
            }
            Inst::Br {
                cond,
                rs1,
                rs2,
                target,
            } => {
                if cond.eval(self.regs[rs1.index()], self.regs[rs2.index()]) {
                    next_pc = target;
                }
            }
            Inst::Jal { rd, target } => {
                self.regs[rd.index()] = (self.pc + 1) as u64;
                next_pc = target;
            }
            Inst::Jalr { rd, rs1, imm } => {
                // Targets beyond the address space clamp to `usize::MAX`
                // (always an invalid instruction index, so the *next* fetch
                // faults), matching the out-of-order model. The previous
                // guard compared `target` against `usize::MAX` *after*
                // truncating it into `next_pc`, so it could never fire on
                // 64-bit hosts and on 32-bit hosts the truncated target
                // silently aliased a valid pc instead of faulting.
                let target = self.regs[rs1.index()].wrapping_add(imm as u64);
                self.regs[rd.index()] = (self.pc + 1) as u64;
                next_pc = target.min(usize::MAX as u64) as usize;
            }
            Inst::Out { rs1 } => self.output.push(self.regs[rs1.index()]),
            Inst::Halt => return StepOutcome::Halted,
            Inst::Nop => {}
        }
        self.pc = next_pc;
        StepOutcome::Continue
    }

    /// The block-cached dispatch loop: executes whole pre-decoded blocks
    /// while a full block fits within `max_steps`, chaining statically
    /// resolved successors directly, and falls back to [`Emulator::step`] for
    /// anything else — cache misses (indirect `jalr` targets, mid-block
    /// pcs, off-end pcs) and the final partial block when the budget (or
    /// an exact `run_to_step` target) stops mid-block. Stops exactly like
    /// the single-step loop: at `steps == max_steps`, at a halt, or at a
    /// fault — with identical architectural state at the stop point.
    fn run_blocks(&mut self, max_steps: u64) -> StopReason {
        let mut chain: u32 = NO_BLOCK;
        loop {
            if self.steps >= max_steps {
                return StopReason::StepLimit;
            }
            // Pick this dispatch's block — taken from the chain hint when
            // the previous block resolved its successor statically, from
            // the entry-pc cache otherwise — unless its full step count
            // would overrun the budget.
            let dispatch = {
                let engine = self.engine.as_ref().expect("block driver needs an engine");
                let (bid, chained) = if chain != NO_BLOCK {
                    (Some(chain), true)
                } else {
                    (engine.lookup(self.pc), false)
                };
                match bid {
                    Some(b) if self.steps + engine.blocks[b as usize].total_steps <= max_steps => {
                        Some((b, chained))
                    }
                    _ => None,
                }
            };
            let Some((bid, chained)) = dispatch else {
                // Single-step fallback; any chain hint is now stale.
                chain = NO_BLOCK;
                match self.step() {
                    StepOutcome::Continue => continue,
                    StepOutcome::Halted => return StopReason::Halted,
                    StepOutcome::Fault(f) => return StopReason::Fault(f),
                }
            };
            match self.exec_block(bid, chained) {
                BlockOutcome::Next(c) => chain = c,
                BlockOutcome::Halted => return StopReason::Halted,
                BlockOutcome::Fault(f) => return StopReason::Fault(f),
            }
        }
    }

    /// Executes one whole block: the branch-free micro-op body, then the
    /// terminator. pc and step count are written back once (or
    /// reconstructed exactly at a faulting micro-op from its position in
    /// the block). Returns the chained successor for statically resolved
    /// edges (fall-through, `jal`, and the taken `br` direction).
    fn exec_block(&mut self, bid: u32, chained: bool) -> BlockOutcome {
        let engine = self.engine.as_mut().expect("caller checked");
        if chained {
            engine.stats.chained_dispatches += 1;
        } else {
            engine.stats.block_hits += 1;
        }
        engine.stats.block_steps += engine.blocks[bid as usize].total_steps;
        let blk = &engine.blocks[bid as usize];
        let entry = blk.entry;
        // A micro-op at body index `i` faulted: the `i` preceding ops
        // retired (pc and steps advanced past them), the faulting
        // instruction counts its step but leaves pc at itself —
        // bit-identical to the single-step interpreter's fault state.
        // (A macro, not a method: `blk` keeps `self.engine` borrowed, so
        // only disjoint direct field accesses may touch `self` here.)
        macro_rules! body_fault {
            ($i:expr, $e:expr) => {{
                self.steps += $i as u64 + 1;
                self.pc = entry + $i;
                return BlockOutcome::Fault($e.into());
            }};
        }
        for (i, op) in blk.ops.iter().enumerate() {
            match *op {
                MicroOp::Alu { op, rd, rs1, rs2 } => {
                    self.regs[(rd & 31) as usize] = op.apply(
                        self.regs[(rs1 & 31) as usize],
                        self.regs[(rs2 & 31) as usize],
                    );
                }
                MicroOp::AluI { op, rd, rs1, imm } => {
                    self.regs[(rd & 31) as usize] =
                        op.apply(self.regs[(rs1 & 31) as usize], imm as u64);
                }
                MicroOp::Li { rd, imm } => self.regs[(rd & 31) as usize] = imm as u64,
                MicroOp::Ld8 { rd, rs1, imm } => {
                    let addr = self.regs[(rs1 & 31) as usize].wrapping_add(imm as u64);
                    match self.mem.load_w::<8>(addr) {
                        Ok(v) => self.regs[(rd & 31) as usize] = v,
                        Err(e) => body_fault!(i, e),
                    }
                }
                MicroOp::Ld4 { rd, rs1, imm } => {
                    let addr = self.regs[(rs1 & 31) as usize].wrapping_add(imm as u64);
                    match self.mem.load_w::<4>(addr) {
                        Ok(v) => self.regs[(rd & 31) as usize] = v,
                        Err(e) => body_fault!(i, e),
                    }
                }
                MicroOp::Ld1 { rd, rs1, imm } => {
                    let addr = self.regs[(rs1 & 31) as usize].wrapping_add(imm as u64);
                    match self.mem.load_w::<1>(addr) {
                        Ok(v) => self.regs[(rd & 31) as usize] = v,
                        Err(e) => body_fault!(i, e),
                    }
                }
                MicroOp::St8 { rs1, rs2, imm } => {
                    let addr = self.regs[(rs1 & 31) as usize].wrapping_add(imm as u64);
                    if let Err(e) = self.mem.store_w::<8>(addr, self.regs[(rs2 & 31) as usize]) {
                        body_fault!(i, e);
                    }
                }
                MicroOp::St4 { rs1, rs2, imm } => {
                    let addr = self.regs[(rs1 & 31) as usize].wrapping_add(imm as u64);
                    if let Err(e) = self.mem.store_w::<4>(addr, self.regs[(rs2 & 31) as usize]) {
                        body_fault!(i, e);
                    }
                }
                MicroOp::St1 { rs1, rs2, imm } => {
                    let addr = self.regs[(rs1 & 31) as usize].wrapping_add(imm as u64);
                    if let Err(e) = self.mem.store_w::<1>(addr, self.regs[(rs2 & 31) as usize]) {
                        body_fault!(i, e);
                    }
                }
                MicroOp::Out { rs1 } => self.output.push(self.regs[(rs1 & 31) as usize]),
                MicroOp::Nop => {}
            }
        }
        let body = blk.ops.len() as u64;
        match blk.end {
            BlockEnd::Br {
                cond,
                rs1,
                rs2,
                taken_pc,
                fall_pc,
                taken_blk,
                fall_blk,
            } => {
                self.steps += body + 1;
                let taken = cond.eval(
                    self.regs[(rs1 & 31) as usize],
                    self.regs[(rs2 & 31) as usize],
                );
                // Both edges are pre-resolved: whichever direction the
                // branch goes, the successor dispatches without a cache
                // lookup (a hot loop chains straight back to itself).
                let (pc, blk) = if taken {
                    (taken_pc, taken_blk)
                } else {
                    (fall_pc, fall_blk)
                };
                self.pc = pc;
                BlockOutcome::Next(blk)
            }
            BlockEnd::Jal {
                rd,
                link,
                target_pc,
                target_blk,
            } => {
                self.steps += body + 1;
                self.regs[(rd & 31) as usize] = link;
                self.pc = target_pc;
                BlockOutcome::Next(target_blk)
            }
            BlockEnd::Jalr { rd, rs1, imm, link } => {
                self.steps += body + 1;
                // Same operand order and clamp as the single-step
                // interpreter: the target reads rs1 *before* the link
                // write (rd may alias rs1).
                let target = self.regs[(rs1 & 31) as usize].wrapping_add(imm as u64);
                self.regs[(rd & 31) as usize] = link;
                self.pc = target.min(usize::MAX as u64) as usize;
                BlockOutcome::Next(NO_BLOCK)
            }
            BlockEnd::Halt => {
                // The halt retires as a step and leaves pc at itself,
                // exactly like the single-step interpreter's early return.
                self.steps += body + 1;
                self.pc = entry + blk.ops.len();
                BlockOutcome::Halted
            }
            BlockEnd::Fall { next_pc, next_blk } => {
                self.steps += body;
                self.pc = next_pc;
                BlockOutcome::Next(next_blk)
            }
        }
    }

    /// Advances execution until exactly `target` instructions have been
    /// executed. The architectural state afterwards (registers, memory, pc,
    /// output) is the hand-off image a cycle-accurate run fast-forwards
    /// from. `target` below the current step count, or a halt/fault before
    /// reaching it, is an error: the caller asked for a prefix this
    /// emulator cannot represent.
    ///
    /// Targets are monotone by construction in the campaign scheduler
    /// (jobs are processed in trigger order), so one emulator per workload
    /// replays the whole prefix once, incrementally.
    pub fn run_to_step(&mut self, target: u64) -> Result<(), StopReason> {
        if target < self.steps {
            return Err(StopReason::StepLimit);
        }
        if self.engine.is_some() {
            // The block driver stops at exactly `target` steps (it never
            // dispatches a block that would overrun it — the final partial
            // block single-steps), so StepLimit *is* the requested prefix.
            return match self.run_blocks(target) {
                StopReason::StepLimit => Ok(()),
                // A halt *as* the target-th instruction still reaches the
                // requested prefix; anything earlier cannot.
                StopReason::Halted if self.steps == target => Ok(()),
                StopReason::Halted => Err(StopReason::Halted),
                f @ StopReason::Fault(_) => Err(f),
            };
        }
        while self.steps < target {
            match self.step() {
                StepOutcome::Continue => {}
                // A halt *as* the target-th instruction still reaches the
                // requested prefix; anything earlier cannot.
                StepOutcome::Halted if self.steps == target => break,
                StepOutcome::Halted => return Err(StopReason::Halted),
                StepOutcome::Fault(f) => return Err(StopReason::Fault(f)),
            }
        }
        Ok(())
    }

    /// Runs until halt, fault or `max_steps` executed instructions.
    pub fn run(&mut self, max_steps: u64) -> EmuResult {
        let stop = if self.engine.is_some() {
            self.run_blocks(max_steps)
        } else {
            loop {
                if self.steps >= max_steps {
                    break StopReason::StepLimit;
                }
                match self.step() {
                    StepOutcome::Continue => {}
                    StepOutcome::Halted => break StopReason::Halted,
                    StepOutcome::Fault(f) => break StopReason::Fault(f),
                }
            }
        };
        EmuResult {
            stop,
            output: self.output.clone(),
            steps: self.steps,
        }
    }
}

/// The outcome of one whole-block execution.
enum BlockOutcome {
    /// Block completed; the successor block id for unconditional edges
    /// ([`NO_BLOCK`] = return to the entry-pc cache).
    Next(u32),
    /// The block's terminator was a halt.
    Halted,
    /// A micro-op faulted mid-block.
    Fault(EmuFault),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::reg::r;

    fn run(a: Asm, max: u64) -> EmuResult {
        Emulator::new(&a.finish()).run(max)
    }

    #[test]
    fn arithmetic_program() {
        let mut a = Asm::new();
        a.li(r(1), 10).li(r(2), 3);
        a.sub(r(3), r(1), r(2));
        a.mul(r(4), r(3), r(3));
        a.out(r(4)).halt();
        assert_eq!(run(a, 100).output, vec![49]);
    }

    #[test]
    fn loop_with_memory() {
        // Sum bytes 0..16 written then read back.
        let mut a = Asm::new();
        a.li(r(1), 0); // i
        a.li(r(2), 16);
        a.li(r(3), 64); // base
        a.label("w");
        a.add(r(4), r(3), r(1));
        a.stb(r(1), r(4), 0);
        a.addi(r(1), r(1), 1);
        a.blt(r(1), r(2), "w");
        a.li(r(1), 0).li(r(5), 0);
        a.label("rd");
        a.add(r(4), r(3), r(1));
        a.ldb(r(6), r(4), 0);
        a.add(r(5), r(5), r(6));
        a.addi(r(1), r(1), 1);
        a.blt(r(1), r(2), "rd");
        a.out(r(5)).halt();
        assert_eq!(run(a, 1000).output, vec![120]);
    }

    #[test]
    fn memory_fault_stops_run() {
        let mut a = Asm::new();
        a.li(r(1), 1 << 40);
        a.ld(r(2), r(1), 0);
        a.halt();
        let res = run(a, 100);
        match res.stop {
            StopReason::Fault(EmuFault::Mem(m)) => assert_eq!(m.addr, 1 << 40),
            other => panic!("expected memory fault, got {other:?}"),
        }
    }

    #[test]
    fn invalid_pc_faults() {
        let mut a = Asm::new();
        a.li(r(1), 1_000_000);
        a.jalr(r(2), r(1), 0);
        let res = run(a, 100);
        assert_eq!(res.stop, StopReason::Fault(EmuFault::InvalidPc(1_000_000)));
    }

    #[test]
    fn jalr_wrapping_target_faults_instead_of_aliasing() {
        // Minimized reproducer: results/fuzz/corpus/emu-jalr-wrap-target.asm.
        // A jalr target above the address space must clamp to `usize::MAX`
        // (so the next fetch faults at the clamped pc, as in the OoO model),
        // never truncate into a valid instruction index. The jalr itself
        // commits: its link register is architecturally written.
        let mut a = Asm::new();
        a.li(r(1), 0x1_0000_0003u64 as i64); // aliases pc 3 if truncated low
        a.jalr(r(3), r(1), 0);
        a.halt();
        a.out(r(1)); // pc 3: wrong-path alias target
        a.halt();
        let mut emu = Emulator::new(&a.finish());
        let res = emu.run(100);
        let want = (0x1_0000_0003u64).min(usize::MAX as u64) as usize;
        assert_eq!(res.stop, StopReason::Fault(EmuFault::InvalidPc(want)));
        assert_eq!(res.output, Vec::<u64>::new(), "the alias path must not run");
        assert_eq!(res.steps, 2, "li and jalr both execute");
        assert_eq!(emu.reg(r(3)), 2, "jalr's link register is written");
    }

    #[test]
    fn run_to_step_replays_exact_prefixes() {
        let mut a = Asm::new();
        a.li(r(1), 0).li(r(2), 10);
        a.label("loop");
        a.addi(r(1), r(1), 1);
        a.out(r(1));
        a.blt(r(1), r(2), "loop");
        a.halt();
        let p = a.finish();
        let mut emu = Emulator::new(&p);
        assert_eq!(emu.run_to_step(8), Ok(()));
        assert_eq!(emu.steps(), 8);
        assert_eq!(emu.output(), [1, 2]);
        // Monotone continuation from where it stopped.
        assert_eq!(emu.run_to_step(11), Ok(()));
        assert_eq!(emu.output(), [1, 2, 3]);
        // Rewinding is an error (the emulator only runs forward).
        assert_eq!(emu.run_to_step(3), Err(StopReason::StepLimit));
        // Running past the halt is an error; *to* the halt is not.
        let total = Emulator::new(&p).run(1_000).steps;
        let mut emu = Emulator::new(&p);
        assert_eq!(emu.run_to_step(total), Ok(()));
        let mut emu = Emulator::new(&p);
        assert_eq!(emu.run_to_step(total + 1), Err(StopReason::Halted));
    }

    #[test]
    fn running_off_the_end_faults() {
        let mut a = Asm::new();
        a.nop();
        let res = run(a, 100);
        assert_eq!(res.stop, StopReason::Fault(EmuFault::InvalidPc(1)));
    }

    #[test]
    fn step_limit() {
        let mut a = Asm::new();
        a.label("spin");
        a.j("spin");
        let res = run(a, 50);
        assert_eq!(res.stop, StopReason::StepLimit);
        assert_eq!(res.steps, 50);
    }

    #[test]
    fn call_and_return() {
        let mut a = Asm::new();
        a.li(r(10), 5);
        a.jal(r(1), "double");
        a.out(r(10)).halt();
        a.label("double");
        a.add(r(10), r(10), r(10));
        a.jalr(r(2), r(1), 0);
        assert_eq!(run(a, 100).output, vec![10]);
    }

    /// The loop workload used by the block-boundary tests. Block structure:
    /// `[0..2)` li,li falls into leader 2; `[2..5)` addi,out,blt (3 steps,
    /// conditional terminator); `[5]` halt. 10 iterations: 2 + 30 steps,
    /// halt retires as step 33.
    fn boundary_program() -> crate::program::Program {
        let mut a = Asm::new();
        a.li(r(1), 0).li(r(2), 10);
        a.label("loop");
        a.addi(r(1), r(1), 1);
        a.out(r(1));
        a.blt(r(1), r(2), "loop");
        a.halt();
        a.finish()
    }

    /// Asserts every observable of the block-cached emulator equals the
    /// single-step emulator's at the same point.
    fn assert_state_eq(blocked: &Emulator, reference: &Emulator, what: &str) {
        assert_eq!(blocked.steps(), reference.steps(), "steps ({what})");
        assert_eq!(blocked.pc(), reference.pc(), "pc ({what})");
        assert_eq!(blocked.regs(), reference.regs(), "regs ({what})");
        assert_eq!(blocked.output(), reference.output(), "output ({what})");
        assert_eq!(blocked.mem(), reference.mem(), "memory ({what})");
    }

    #[test]
    fn run_to_step_stops_exactly_at_block_boundaries() {
        let p = boundary_program();
        // Targets land on a block leader (2), mid-block (4), and on the
        // halt instruction (33); each must reproduce the single-step
        // emulator's state bit for bit.
        for target in [2u64, 4, 33] {
            let mut blocked = Emulator::new(&p);
            let mut reference = Emulator::single_step(&p);
            assert!(blocked.block_engine_enabled());
            assert!(!reference.block_engine_enabled());
            assert_eq!(blocked.run_to_step(target), Ok(()), "target {target}");
            assert_eq!(reference.run_to_step(target), Ok(()), "target {target}");
            assert_state_eq(&blocked, &reference, &format!("target {target}"));
        }
        // Target on the leader: the whole previous block executed.
        let mut emu = Emulator::new(&p);
        assert_eq!(emu.run_to_step(2), Ok(()));
        assert_eq!(emu.pc(), 2, "stopped exactly at the loop leader");
        // Mid-block target: the final partial block single-steps.
        assert_eq!(emu.run_to_step(4), Ok(()));
        assert_eq!(emu.pc(), 4, "stopped inside the loop block");
        // On the halt: reaching the prefix *at* the halt is not an error...
        assert_eq!(emu.run_to_step(33), Ok(()));
        assert_eq!(emu.pc(), 5, "pc rests on the halt instruction");
        // ...and a target below the current step count still is.
        assert_eq!(emu.run_to_step(4), Err(StopReason::StepLimit));
        // Past the halt is unreachable.
        let mut emu = Emulator::new(&p);
        assert_eq!(emu.run_to_step(34), Err(StopReason::Halted));
        assert_eq!(emu.steps(), 33, "the halt still retired");
    }

    #[test]
    fn block_engine_matches_single_step_at_every_prefix() {
        let p = boundary_program();
        let total = Emulator::single_step(&p).run(1_000).steps;
        for target in 0..=total {
            let mut blocked = Emulator::new(&p);
            let mut reference = Emulator::single_step(&p);
            assert_eq!(
                blocked.run_to_step(target),
                reference.run_to_step(target),
                "target {target}"
            );
            assert_state_eq(&blocked, &reference, &format!("target {target}"));
        }
    }

    #[test]
    fn block_engine_matches_single_step_on_faults() {
        // A mid-block faulting load: the fault pc, step count and partial
        // register state must match the single-step interpreter exactly.
        let mut a = Asm::new();
        a.li(r(1), 1 << 40);
        a.li(r(2), 7);
        a.ld(r(3), r(1), 0); // faults mid-block
        a.out(r(2));
        a.halt();
        let p = a.finish();
        let mut blocked = Emulator::new(&p);
        let mut reference = Emulator::single_step(&p);
        let br = blocked.run(100);
        let rr = reference.run(100);
        assert_eq!(br, rr);
        assert_eq!(
            br.stop,
            StopReason::Fault(EmuFault::Mem(MemFault {
                addr: 1 << 40,
                width: 8
            }))
        );
        assert_state_eq(&blocked, &reference, "after fault");
        assert_eq!(blocked.pc(), 2, "pc rests on the faulting load");
    }

    #[test]
    fn block_stats_count_dispatches_and_chains() {
        let p = boundary_program();
        let mut emu = Emulator::new(&p);
        let res = emu.run(1_000);
        assert_eq!(res.stop, StopReason::Halted);
        let stats = emu.block_stats();
        assert_eq!(stats.blocks_compiled, 3);
        // Every edge is statically resolved, so only the very first
        // dispatch (the entry block) goes through the cache: the
        // fall-through into the loop, the 9 taken loop-backs, and the
        // not-taken exit into the halt block all chain directly.
        assert_eq!(stats.block_hits, 1, "{stats:?}");
        assert_eq!(stats.chained_dispatches, 11, "{stats:?}");
        assert_eq!(
            stats.block_steps, res.steps,
            "every step retired inside a block"
        );
        assert!(stats.steps_per_dispatch() > 1.0, "{stats:?}");
        // The single-step emulator reports all-zero stats.
        assert_eq!(
            Emulator::single_step(&p).block_stats(),
            crate::block::BlockStats::default()
        );
    }

    #[test]
    fn out_preserves_order() {
        let mut a = Asm::new();
        for v in [3i64, 1, 4, 1, 5] {
            a.li(r(1), v);
            a.out(r(1));
        }
        a.halt();
        assert_eq!(run(a, 100).output, vec![3, 1, 4, 1, 5]);
    }
}
