//! In-order architectural emulator — the golden reference model.
//!
//! The emulator executes programs with precise architectural semantics and no
//! microarchitectural state. It serves two roles in the reproduction:
//!
//! 1. validating workloads against native Rust reference implementations, and
//! 2. cross-checking that the out-of-order simulator (with its full register
//!    renaming subsystem) is architecturally equivalent when no bug is
//!    injected.

use crate::inst::Inst;
use crate::mem::{MemFault, Memory};
use crate::program::Program;
use crate::reg::{ArchReg, NUM_ARCH_REGS};
use std::fmt;

/// An architectural fault raised during emulation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EmuFault {
    /// A data memory access out of bounds.
    Mem(MemFault),
    /// Control transferred to an invalid instruction index.
    InvalidPc(usize),
}

impl fmt::Display for EmuFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuFault::Mem(m) => write!(f, "{m}"),
            EmuFault::InvalidPc(pc) => write!(f, "invalid pc: {pc}"),
        }
    }
}

impl std::error::Error for EmuFault {}

impl From<MemFault> for EmuFault {
    fn from(m: MemFault) -> Self {
        EmuFault::Mem(m)
    }
}

/// Why a run stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StopReason {
    /// The program executed [`Inst::Halt`].
    Halted,
    /// An architectural fault occurred.
    Fault(EmuFault),
    /// The step budget given to [`Emulator::run`] was exhausted.
    StepLimit,
}

/// The architectural outcome of a run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EmuResult {
    /// Why execution stopped.
    pub stop: StopReason,
    /// Values emitted by [`Inst::Out`], in program order.
    pub output: Vec<u64>,
    /// Number of instructions executed (committed).
    pub steps: u64,
}

/// The architectural emulator. Create one per run with [`Emulator::new`].
#[derive(Clone, Debug)]
pub struct Emulator {
    regs: [u64; NUM_ARCH_REGS],
    pc: usize,
    mem: Memory,
    output: Vec<u64>,
    steps: u64,
    program: Program,
}

/// The result of a single architectural step.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepOutcome {
    /// The instruction executed; execution continues.
    Continue,
    /// The instruction was `Halt`.
    Halted,
    /// The instruction faulted.
    Fault(EmuFault),
}

impl Emulator {
    /// Creates an emulator with fresh memory built from the program image.
    pub fn new(program: &Program) -> Self {
        Emulator {
            regs: [0; NUM_ARCH_REGS],
            pc: 0,
            mem: program.build_memory(),
            output: Vec::new(),
            steps: 0,
            program: program.clone(),
        }
    }

    /// Current program counter (instruction index).
    #[inline]
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Reads an architectural register.
    #[inline]
    pub fn reg(&self, r: ArchReg) -> u64 {
        self.regs[r.index()]
    }

    /// The whole architectural register file, indexed by register number.
    /// The fast-forward hand-off gate compares this wholesale against the
    /// out-of-order model's retirement-RAT view.
    #[inline]
    pub fn regs(&self) -> &[u64; NUM_ARCH_REGS] {
        &self.regs
    }

    /// Writes an architectural register (for test setup).
    #[inline]
    pub fn set_reg(&mut self, r: ArchReg, v: u64) {
        self.regs[r.index()] = v;
    }

    /// The data memory.
    #[inline]
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// The output stream so far.
    #[inline]
    pub fn output(&self) -> &[u64] {
        &self.output
    }

    /// Number of instructions executed so far.
    #[inline]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Executes a single instruction.
    pub fn step(&mut self) -> StepOutcome {
        let Some(inst) = self.program.fetch(self.pc) else {
            return StepOutcome::Fault(EmuFault::InvalidPc(self.pc));
        };
        self.steps += 1;
        let mut next_pc = self.pc + 1;
        match inst {
            Inst::Alu { op, rd, rs1, rs2 } => {
                self.regs[rd.index()] = op.apply(self.regs[rs1.index()], self.regs[rs2.index()]);
            }
            Inst::AluI { op, rd, rs1, imm } => {
                self.regs[rd.index()] = op.apply(self.regs[rs1.index()], imm as u64);
            }
            Inst::Li { rd, imm } => self.regs[rd.index()] = imm as u64,
            Inst::Ld { rd, rs1, imm } | Inst::Ldw { rd, rs1, imm } | Inst::Ldb { rd, rs1, imm } => {
                let width = inst.mem_width().expect("load has a width");
                let addr = self.regs[rs1.index()].wrapping_add(imm as u64);
                match self.mem.load(addr, width) {
                    Ok(v) => self.regs[rd.index()] = v,
                    Err(e) => return StepOutcome::Fault(e.into()),
                }
            }
            Inst::St { rs1, rs2, imm }
            | Inst::Stw { rs1, rs2, imm }
            | Inst::Stb { rs1, rs2, imm } => {
                let width = inst.mem_width().expect("store has a width");
                let addr = self.regs[rs1.index()].wrapping_add(imm as u64);
                if let Err(e) = self.mem.store(addr, width, self.regs[rs2.index()]) {
                    return StepOutcome::Fault(e.into());
                }
            }
            Inst::Br {
                cond,
                rs1,
                rs2,
                target,
            } => {
                if cond.eval(self.regs[rs1.index()], self.regs[rs2.index()]) {
                    next_pc = target;
                }
            }
            Inst::Jal { rd, target } => {
                self.regs[rd.index()] = (self.pc + 1) as u64;
                next_pc = target;
            }
            Inst::Jalr { rd, rs1, imm } => {
                // Targets beyond the address space clamp to `usize::MAX`
                // (always an invalid instruction index, so the *next* fetch
                // faults), matching the out-of-order model. The previous
                // guard compared `target` against `usize::MAX` *after*
                // truncating it into `next_pc`, so it could never fire on
                // 64-bit hosts and on 32-bit hosts the truncated target
                // silently aliased a valid pc instead of faulting.
                let target = self.regs[rs1.index()].wrapping_add(imm as u64);
                self.regs[rd.index()] = (self.pc + 1) as u64;
                next_pc = target.min(usize::MAX as u64) as usize;
            }
            Inst::Out { rs1 } => self.output.push(self.regs[rs1.index()]),
            Inst::Halt => return StepOutcome::Halted,
            Inst::Nop => {}
        }
        self.pc = next_pc;
        StepOutcome::Continue
    }

    /// Advances execution until exactly `target` instructions have been
    /// executed. The architectural state afterwards (registers, memory, pc,
    /// output) is the hand-off image a cycle-accurate run fast-forwards
    /// from. `target` below the current step count, or a halt/fault before
    /// reaching it, is an error: the caller asked for a prefix this
    /// emulator cannot represent.
    ///
    /// Targets are monotone by construction in the campaign scheduler
    /// (jobs are processed in trigger order), so one emulator per workload
    /// replays the whole prefix once, incrementally.
    pub fn run_to_step(&mut self, target: u64) -> Result<(), StopReason> {
        if target < self.steps {
            return Err(StopReason::StepLimit);
        }
        while self.steps < target {
            match self.step() {
                StepOutcome::Continue => {}
                // A halt *as* the target-th instruction still reaches the
                // requested prefix; anything earlier cannot.
                StepOutcome::Halted if self.steps == target => break,
                StepOutcome::Halted => return Err(StopReason::Halted),
                StepOutcome::Fault(f) => return Err(StopReason::Fault(f)),
            }
        }
        Ok(())
    }

    /// Runs until halt, fault or `max_steps` executed instructions.
    pub fn run(&mut self, max_steps: u64) -> EmuResult {
        let stop = loop {
            if self.steps >= max_steps {
                break StopReason::StepLimit;
            }
            match self.step() {
                StepOutcome::Continue => {}
                StepOutcome::Halted => break StopReason::Halted,
                StepOutcome::Fault(f) => break StopReason::Fault(f),
            }
        };
        EmuResult {
            stop,
            output: self.output.clone(),
            steps: self.steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::reg::r;

    fn run(a: Asm, max: u64) -> EmuResult {
        Emulator::new(&a.finish()).run(max)
    }

    #[test]
    fn arithmetic_program() {
        let mut a = Asm::new();
        a.li(r(1), 10).li(r(2), 3);
        a.sub(r(3), r(1), r(2));
        a.mul(r(4), r(3), r(3));
        a.out(r(4)).halt();
        assert_eq!(run(a, 100).output, vec![49]);
    }

    #[test]
    fn loop_with_memory() {
        // Sum bytes 0..16 written then read back.
        let mut a = Asm::new();
        a.li(r(1), 0); // i
        a.li(r(2), 16);
        a.li(r(3), 64); // base
        a.label("w");
        a.add(r(4), r(3), r(1));
        a.stb(r(1), r(4), 0);
        a.addi(r(1), r(1), 1);
        a.blt(r(1), r(2), "w");
        a.li(r(1), 0).li(r(5), 0);
        a.label("rd");
        a.add(r(4), r(3), r(1));
        a.ldb(r(6), r(4), 0);
        a.add(r(5), r(5), r(6));
        a.addi(r(1), r(1), 1);
        a.blt(r(1), r(2), "rd");
        a.out(r(5)).halt();
        assert_eq!(run(a, 1000).output, vec![120]);
    }

    #[test]
    fn memory_fault_stops_run() {
        let mut a = Asm::new();
        a.li(r(1), 1 << 40);
        a.ld(r(2), r(1), 0);
        a.halt();
        let res = run(a, 100);
        match res.stop {
            StopReason::Fault(EmuFault::Mem(m)) => assert_eq!(m.addr, 1 << 40),
            other => panic!("expected memory fault, got {other:?}"),
        }
    }

    #[test]
    fn invalid_pc_faults() {
        let mut a = Asm::new();
        a.li(r(1), 1_000_000);
        a.jalr(r(2), r(1), 0);
        let res = run(a, 100);
        assert_eq!(res.stop, StopReason::Fault(EmuFault::InvalidPc(1_000_000)));
    }

    #[test]
    fn jalr_wrapping_target_faults_instead_of_aliasing() {
        // Minimized reproducer: results/fuzz/corpus/emu-jalr-wrap-target.asm.
        // A jalr target above the address space must clamp to `usize::MAX`
        // (so the next fetch faults at the clamped pc, as in the OoO model),
        // never truncate into a valid instruction index. The jalr itself
        // commits: its link register is architecturally written.
        let mut a = Asm::new();
        a.li(r(1), 0x1_0000_0003u64 as i64); // aliases pc 3 if truncated low
        a.jalr(r(3), r(1), 0);
        a.halt();
        a.out(r(1)); // pc 3: wrong-path alias target
        a.halt();
        let mut emu = Emulator::new(&a.finish());
        let res = emu.run(100);
        let want = (0x1_0000_0003u64).min(usize::MAX as u64) as usize;
        assert_eq!(res.stop, StopReason::Fault(EmuFault::InvalidPc(want)));
        assert_eq!(res.output, Vec::<u64>::new(), "the alias path must not run");
        assert_eq!(res.steps, 2, "li and jalr both execute");
        assert_eq!(emu.reg(r(3)), 2, "jalr's link register is written");
    }

    #[test]
    fn run_to_step_replays_exact_prefixes() {
        let mut a = Asm::new();
        a.li(r(1), 0).li(r(2), 10);
        a.label("loop");
        a.addi(r(1), r(1), 1);
        a.out(r(1));
        a.blt(r(1), r(2), "loop");
        a.halt();
        let p = a.finish();
        let mut emu = Emulator::new(&p);
        assert_eq!(emu.run_to_step(8), Ok(()));
        assert_eq!(emu.steps(), 8);
        assert_eq!(emu.output(), [1, 2]);
        // Monotone continuation from where it stopped.
        assert_eq!(emu.run_to_step(11), Ok(()));
        assert_eq!(emu.output(), [1, 2, 3]);
        // Rewinding is an error (the emulator only runs forward).
        assert_eq!(emu.run_to_step(3), Err(StopReason::StepLimit));
        // Running past the halt is an error; *to* the halt is not.
        let total = Emulator::new(&p).run(1_000).steps;
        let mut emu = Emulator::new(&p);
        assert_eq!(emu.run_to_step(total), Ok(()));
        let mut emu = Emulator::new(&p);
        assert_eq!(emu.run_to_step(total + 1), Err(StopReason::Halted));
    }

    #[test]
    fn running_off_the_end_faults() {
        let mut a = Asm::new();
        a.nop();
        let res = run(a, 100);
        assert_eq!(res.stop, StopReason::Fault(EmuFault::InvalidPc(1)));
    }

    #[test]
    fn step_limit() {
        let mut a = Asm::new();
        a.label("spin");
        a.j("spin");
        let res = run(a, 50);
        assert_eq!(res.stop, StopReason::StepLimit);
        assert_eq!(res.steps, 50);
    }

    #[test]
    fn call_and_return() {
        let mut a = Asm::new();
        a.li(r(10), 5);
        a.jal(r(1), "double");
        a.out(r(10)).halt();
        a.label("double");
        a.add(r(10), r(10), r(10));
        a.jalr(r(2), r(1), 0);
        assert_eq!(run(a, 100).output, vec![10]);
    }

    #[test]
    fn out_preserves_order() {
        let mut a = Asm::new();
        for v in [3i64, 1, 4, 1, 5] {
            a.li(r(1), v);
            a.out(r(1));
        }
        a.halt();
        assert_eq!(run(a, 100).output, vec![3, 1, 4, 1, 5]);
    }
}
