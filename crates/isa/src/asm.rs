//! A tiny two-pass assembler with symbolic labels.
//!
//! Workloads are written directly in Rust against this builder; labels may be
//! referenced before they are defined and are patched in [`Asm::finish`].

use crate::inst::{AluOp, BrCond, Inst};
use crate::program::{Program, DEFAULT_MEM_SIZE};
use crate::reg::ArchReg;
use std::collections::HashMap;

#[derive(Clone, Debug)]
enum Fixup {
    /// Patch the `target` field of the instruction at `at`.
    Target { at: usize, label: String },
    /// Patch the immediate of the `Li` at `at` with the label's pc index
    /// (used for computed jumps through `Jalr`).
    LiPc { at: usize, label: String },
}

/// Assembler/builder for tiny-RISC [`Program`]s.
///
/// All instruction-emitting methods return `&mut Self` so straight-line
/// sequences can be chained. Control-flow targets are string labels.
///
/// ```
/// use idld_isa::asm::Asm;
/// use idld_isa::reg::r;
/// use idld_isa::emu::Emulator;
///
/// let mut a = Asm::new();
/// a.li(r(1), 0).li(r(2), 5);
/// a.label("loop");
/// a.add(r(1), r(1), r(2));
/// a.addi(r(2), r(2), -1);
/// a.bne(r(2), r(0), "loop");
/// a.out(r(1)).halt();
/// let p = a.finish();
/// assert_eq!(Emulator::new(&p).run(100).output, vec![15]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Asm {
    insts: Vec<Inst>,
    labels: HashMap<String, usize>,
    fixups: Vec<Fixup>,
    image: Vec<(u64, Vec<u8>)>,
    mem_size: usize,
    name: String,
}

impl Asm {
    /// Creates an empty assembler with the default 1 MiB memory size.
    pub fn new() -> Self {
        Asm {
            mem_size: DEFAULT_MEM_SIZE,
            ..Default::default()
        }
    }

    /// Sets the program name used in experiment reports.
    pub fn name(&mut self, name: &str) -> &mut Self {
        self.name = name.to_string();
        self
    }

    /// Overrides the data memory size in bytes.
    pub fn mem_size(&mut self, bytes: usize) -> &mut Self {
        self.mem_size = bytes;
        self
    }

    /// Adds an initial data region at `addr`.
    pub fn data(&mut self, addr: u64, bytes: &[u8]) -> &mut Self {
        self.image.push((addr, bytes.to_vec()));
        self
    }

    /// Adds an initial region of little-endian 64-bit words at `addr`.
    pub fn data_u64(&mut self, addr: u64, words: &[u64]) -> &mut Self {
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        self.data(addr, &bytes)
    }

    /// Adds an initial region of little-endian 32-bit words at `addr`.
    pub fn data_u32(&mut self, addr: u64, words: &[u32]) -> &mut Self {
        let mut bytes = Vec::with_capacity(words.len() * 4);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        self.data(addr, &bytes)
    }

    /// Defines `label` at the current instruction index.
    ///
    /// # Panics
    ///
    /// Panics if the label was already defined.
    pub fn label(&mut self, label: &str) -> &mut Self {
        let prev = self.labels.insert(label.to_string(), self.insts.len());
        assert!(prev.is_none(), "label redefined: {label}");
        self
    }

    /// Current instruction index (the pc of the next emitted instruction).
    pub fn here(&self) -> usize {
        self.insts.len()
    }

    fn push(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(inst);
        self
    }

    fn push_target(&mut self, inst: Inst, label: &str) -> &mut Self {
        self.fixups.push(Fixup::Target {
            at: self.insts.len(),
            label: label.to_string(),
        });
        self.push(inst)
    }

    // --- Generic forms (program generators) ---------------------------------

    /// `rd = rs1 <op> rs2` for any [`AluOp`].
    pub fn alu(&mut self, op: AluOp, rd: ArchReg, rs1: ArchReg, rs2: ArchReg) -> &mut Self {
        self.push(Inst::Alu { op, rd, rs1, rs2 })
    }

    /// `rd = rs1 <op> imm` for any [`AluOp`].
    pub fn alui(&mut self, op: AluOp, rd: ArchReg, rs1: ArchReg, imm: i64) -> &mut Self {
        self.push(Inst::AluI { op, rd, rs1, imm })
    }

    /// Branch to `label` on any [`BrCond`].
    pub fn br(&mut self, cond: BrCond, rs1: ArchReg, rs2: ArchReg, label: &str) -> &mut Self {
        self.push_target(
            Inst::Br {
                cond,
                rs1,
                rs2,
                target: 0,
            },
            label,
        )
    }

    // --- ALU register forms -------------------------------------------------

    /// `rd = rs1 + rs2`.
    pub fn add(&mut self, rd: ArchReg, rs1: ArchReg, rs2: ArchReg) -> &mut Self {
        self.push(Inst::Alu {
            op: AluOp::Add,
            rd,
            rs1,
            rs2,
        })
    }
    /// `rd = rs1 - rs2`.
    pub fn sub(&mut self, rd: ArchReg, rs1: ArchReg, rs2: ArchReg) -> &mut Self {
        self.push(Inst::Alu {
            op: AluOp::Sub,
            rd,
            rs1,
            rs2,
        })
    }
    /// `rd = rs1 * rs2`.
    pub fn mul(&mut self, rd: ArchReg, rs1: ArchReg, rs2: ArchReg) -> &mut Self {
        self.push(Inst::Alu {
            op: AluOp::Mul,
            rd,
            rs1,
            rs2,
        })
    }
    /// `rd = rs1 / rs2` (unsigned; x/0 = all-ones).
    pub fn divu(&mut self, rd: ArchReg, rs1: ArchReg, rs2: ArchReg) -> &mut Self {
        self.push(Inst::Alu {
            op: AluOp::Divu,
            rd,
            rs1,
            rs2,
        })
    }
    /// `rd = rs1 % rs2` (unsigned; x%0 = x).
    pub fn remu(&mut self, rd: ArchReg, rs1: ArchReg, rs2: ArchReg) -> &mut Self {
        self.push(Inst::Alu {
            op: AluOp::Remu,
            rd,
            rs1,
            rs2,
        })
    }
    /// `rd = rs1 & rs2`.
    pub fn and(&mut self, rd: ArchReg, rs1: ArchReg, rs2: ArchReg) -> &mut Self {
        self.push(Inst::Alu {
            op: AluOp::And,
            rd,
            rs1,
            rs2,
        })
    }
    /// `rd = rs1 | rs2`.
    pub fn or(&mut self, rd: ArchReg, rs1: ArchReg, rs2: ArchReg) -> &mut Self {
        self.push(Inst::Alu {
            op: AluOp::Or,
            rd,
            rs1,
            rs2,
        })
    }
    /// `rd = rs1 ^ rs2`.
    pub fn xor(&mut self, rd: ArchReg, rs1: ArchReg, rs2: ArchReg) -> &mut Self {
        self.push(Inst::Alu {
            op: AluOp::Xor,
            rd,
            rs1,
            rs2,
        })
    }
    /// `rd = rs1 << rs2`.
    pub fn sll(&mut self, rd: ArchReg, rs1: ArchReg, rs2: ArchReg) -> &mut Self {
        self.push(Inst::Alu {
            op: AluOp::Sll,
            rd,
            rs1,
            rs2,
        })
    }
    /// `rd = rs1 >> rs2` (logical).
    pub fn srl(&mut self, rd: ArchReg, rs1: ArchReg, rs2: ArchReg) -> &mut Self {
        self.push(Inst::Alu {
            op: AluOp::Srl,
            rd,
            rs1,
            rs2,
        })
    }
    /// `rd = rs1 >> rs2` (arithmetic).
    pub fn sra(&mut self, rd: ArchReg, rs1: ArchReg, rs2: ArchReg) -> &mut Self {
        self.push(Inst::Alu {
            op: AluOp::Sra,
            rd,
            rs1,
            rs2,
        })
    }
    /// `rd = (rs1 < rs2)` signed.
    pub fn slt(&mut self, rd: ArchReg, rs1: ArchReg, rs2: ArchReg) -> &mut Self {
        self.push(Inst::Alu {
            op: AluOp::Slt,
            rd,
            rs1,
            rs2,
        })
    }
    /// `rd = (rs1 < rs2)` unsigned.
    pub fn sltu(&mut self, rd: ArchReg, rs1: ArchReg, rs2: ArchReg) -> &mut Self {
        self.push(Inst::Alu {
            op: AluOp::Sltu,
            rd,
            rs1,
            rs2,
        })
    }

    // --- ALU immediate forms ------------------------------------------------

    /// `rd = rs1 + imm`.
    pub fn addi(&mut self, rd: ArchReg, rs1: ArchReg, imm: i64) -> &mut Self {
        self.push(Inst::AluI {
            op: AluOp::Add,
            rd,
            rs1,
            imm,
        })
    }
    /// `rd = rs1 & imm`.
    pub fn andi(&mut self, rd: ArchReg, rs1: ArchReg, imm: i64) -> &mut Self {
        self.push(Inst::AluI {
            op: AluOp::And,
            rd,
            rs1,
            imm,
        })
    }
    /// `rd = rs1 | imm`.
    pub fn ori(&mut self, rd: ArchReg, rs1: ArchReg, imm: i64) -> &mut Self {
        self.push(Inst::AluI {
            op: AluOp::Or,
            rd,
            rs1,
            imm,
        })
    }
    /// `rd = rs1 ^ imm`.
    pub fn xori(&mut self, rd: ArchReg, rs1: ArchReg, imm: i64) -> &mut Self {
        self.push(Inst::AluI {
            op: AluOp::Xor,
            rd,
            rs1,
            imm,
        })
    }
    /// `rd = rs1 << imm`.
    pub fn slli(&mut self, rd: ArchReg, rs1: ArchReg, imm: i64) -> &mut Self {
        self.push(Inst::AluI {
            op: AluOp::Sll,
            rd,
            rs1,
            imm,
        })
    }
    /// `rd = rs1 >> imm` (logical).
    pub fn srli(&mut self, rd: ArchReg, rs1: ArchReg, imm: i64) -> &mut Self {
        self.push(Inst::AluI {
            op: AluOp::Srl,
            rd,
            rs1,
            imm,
        })
    }
    /// `rd = rs1 >> imm` (arithmetic).
    pub fn srai(&mut self, rd: ArchReg, rs1: ArchReg, imm: i64) -> &mut Self {
        self.push(Inst::AluI {
            op: AluOp::Sra,
            rd,
            rs1,
            imm,
        })
    }
    /// `rd = (rs1 < imm)` signed.
    pub fn slti(&mut self, rd: ArchReg, rs1: ArchReg, imm: i64) -> &mut Self {
        self.push(Inst::AluI {
            op: AluOp::Slt,
            rd,
            rs1,
            imm,
        })
    }
    /// `rd = rs1 * imm`.
    pub fn muli(&mut self, rd: ArchReg, rs1: ArchReg, imm: i64) -> &mut Self {
        self.push(Inst::AluI {
            op: AluOp::Mul,
            rd,
            rs1,
            imm,
        })
    }

    // --- Immediates and moves -----------------------------------------------

    /// `rd = imm`.
    pub fn li(&mut self, rd: ArchReg, imm: i64) -> &mut Self {
        self.push(Inst::Li { rd, imm })
    }
    /// `rd = rs1` (assembled as `addi rd, rs1, 0`).
    pub fn mv(&mut self, rd: ArchReg, rs1: ArchReg) -> &mut Self {
        self.addi(rd, rs1, 0)
    }
    /// `rd =` instruction index of `label` (for indirect jumps).
    pub fn la(&mut self, rd: ArchReg, label: &str) -> &mut Self {
        self.fixups.push(Fixup::LiPc {
            at: self.insts.len(),
            label: label.to_string(),
        });
        self.push(Inst::Li { rd, imm: 0 })
    }

    // --- Memory -------------------------------------------------------------

    /// `rd = mem64[rs1 + imm]`.
    pub fn ld(&mut self, rd: ArchReg, rs1: ArchReg, imm: i64) -> &mut Self {
        self.push(Inst::Ld { rd, rs1, imm })
    }
    /// `rd = zext(mem32[rs1 + imm])`.
    pub fn ldw(&mut self, rd: ArchReg, rs1: ArchReg, imm: i64) -> &mut Self {
        self.push(Inst::Ldw { rd, rs1, imm })
    }
    /// `rd = zext(mem8[rs1 + imm])`.
    pub fn ldb(&mut self, rd: ArchReg, rs1: ArchReg, imm: i64) -> &mut Self {
        self.push(Inst::Ldb { rd, rs1, imm })
    }
    /// `mem64[rs1 + imm] = rs2`.
    pub fn st(&mut self, rs2: ArchReg, rs1: ArchReg, imm: i64) -> &mut Self {
        self.push(Inst::St { rs1, rs2, imm })
    }
    /// `mem32[rs1 + imm] = rs2`.
    pub fn stw(&mut self, rs2: ArchReg, rs1: ArchReg, imm: i64) -> &mut Self {
        self.push(Inst::Stw { rs1, rs2, imm })
    }
    /// `mem8[rs1 + imm] = rs2`.
    pub fn stb(&mut self, rs2: ArchReg, rs1: ArchReg, imm: i64) -> &mut Self {
        self.push(Inst::Stb { rs1, rs2, imm })
    }

    // --- Control flow -------------------------------------------------------

    /// Branch to `label` if `rs1 == rs2`.
    pub fn beq(&mut self, rs1: ArchReg, rs2: ArchReg, label: &str) -> &mut Self {
        self.push_target(
            Inst::Br {
                cond: BrCond::Eq,
                rs1,
                rs2,
                target: 0,
            },
            label,
        )
    }
    /// Branch to `label` if `rs1 != rs2`.
    pub fn bne(&mut self, rs1: ArchReg, rs2: ArchReg, label: &str) -> &mut Self {
        self.push_target(
            Inst::Br {
                cond: BrCond::Ne,
                rs1,
                rs2,
                target: 0,
            },
            label,
        )
    }
    /// Branch to `label` if `rs1 < rs2` (signed).
    pub fn blt(&mut self, rs1: ArchReg, rs2: ArchReg, label: &str) -> &mut Self {
        self.push_target(
            Inst::Br {
                cond: BrCond::Lt,
                rs1,
                rs2,
                target: 0,
            },
            label,
        )
    }
    /// Branch to `label` if `rs1 >= rs2` (signed).
    pub fn bge(&mut self, rs1: ArchReg, rs2: ArchReg, label: &str) -> &mut Self {
        self.push_target(
            Inst::Br {
                cond: BrCond::Ge,
                rs1,
                rs2,
                target: 0,
            },
            label,
        )
    }
    /// Branch to `label` if `rs1 < rs2` (unsigned).
    pub fn bltu(&mut self, rs1: ArchReg, rs2: ArchReg, label: &str) -> &mut Self {
        self.push_target(
            Inst::Br {
                cond: BrCond::Ltu,
                rs1,
                rs2,
                target: 0,
            },
            label,
        )
    }
    /// Branch to `label` if `rs1 >= rs2` (unsigned).
    pub fn bgeu(&mut self, rs1: ArchReg, rs2: ArchReg, label: &str) -> &mut Self {
        self.push_target(
            Inst::Br {
                cond: BrCond::Geu,
                rs1,
                rs2,
                target: 0,
            },
            label,
        )
    }
    /// Unconditional jump to `label`, link in `rd`.
    pub fn jal(&mut self, rd: ArchReg, label: &str) -> &mut Self {
        self.push_target(Inst::Jal { rd, target: 0 }, label)
    }
    /// Unconditional jump to `label`, assembled as an always-taken branch
    /// (`beq r0, r0, label`) so it writes no register — programs using `j`
    /// must keep the `r0 == 0` convention.
    pub fn j(&mut self, label: &str) -> &mut Self {
        let zero = ArchReg::new(0);
        self.beq(zero, zero, label)
    }
    /// Indirect jump to instruction index `rs1 + imm`, link in `rd`.
    pub fn jalr(&mut self, rd: ArchReg, rs1: ArchReg, imm: i64) -> &mut Self {
        self.push(Inst::Jalr { rd, rs1, imm })
    }

    // --- Misc ---------------------------------------------------------------

    /// Appends `rs1` to the output stream.
    pub fn out(&mut self, rs1: ArchReg) -> &mut Self {
        self.push(Inst::Out { rs1 })
    }
    /// Normal termination.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Inst::Halt)
    }
    /// No operation.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Inst::Nop)
    }

    /// Resolves all label fixups and produces the final [`Program`].
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never defined.
    pub fn finish(self) -> Program {
        let Asm {
            mut insts,
            labels,
            fixups,
            image,
            mem_size,
            name,
        } = self;
        for fixup in fixups {
            match fixup {
                Fixup::Target { at, label } => {
                    let &pc = labels
                        .get(&label)
                        .unwrap_or_else(|| panic!("undefined label: {label}"));
                    match &mut insts[at] {
                        Inst::Br { target, .. } | Inst::Jal { target, .. } => *target = pc,
                        other => unreachable!("target fixup on non-control inst {other}"),
                    }
                }
                Fixup::LiPc { at, label } => {
                    let &pc = labels
                        .get(&label)
                        .unwrap_or_else(|| panic!("undefined label: {label}"));
                    match &mut insts[at] {
                        Inst::Li { imm, .. } => *imm = pc as i64,
                        other => unreachable!("LiPc fixup on non-Li inst {other}"),
                    }
                }
            }
        }
        Program {
            insts,
            image,
            mem_size,
            name,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emu::{Emulator, StopReason};
    use crate::reg::r;

    #[test]
    fn forward_and_backward_labels() {
        let mut a = Asm::new();
        a.li(r(1), 3);
        a.j("skip"); // forward reference
        a.li(r(1), 99);
        a.label("skip");
        a.label("loop");
        a.addi(r(1), r(1), -1);
        a.bne(r(1), r(0), "loop"); // backward reference
        a.out(r(1)).halt();
        let p = a.finish();
        let res = Emulator::new(&p).run(100);
        assert_eq!(res.stop, StopReason::Halted);
        assert_eq!(res.output, vec![0]);
    }

    #[test]
    fn la_and_indirect_jump() {
        let mut a = Asm::new();
        a.la(r(5), "func");
        a.jalr(r(1), r(5), 0);
        a.out(r(2)).halt();
        a.label("func");
        a.li(r(2), 77);
        a.jalr(r(3), r(1), 0); // return through link register
        let p = a.finish();
        let res = Emulator::new(&p).run(100);
        assert_eq!(res.output, vec![77]);
    }

    #[test]
    fn data_images() {
        let mut a = Asm::new();
        a.data_u64(0x100, &[41]);
        a.li(r(1), 0x100);
        a.ld(r(2), r(1), 0);
        a.addi(r(2), r(2), 1);
        a.out(r(2)).halt();
        let res = Emulator::new(&a.finish()).run(100);
        assert_eq!(res.output, vec![42]);
    }

    #[test]
    fn data_u32_little_endian() {
        let mut a = Asm::new();
        a.data_u32(0, &[0xdead_beef]);
        a.li(r(1), 0);
        a.ldw(r(2), r(1), 0);
        a.out(r(2)).halt();
        let res = Emulator::new(&a.finish()).run(100);
        assert_eq!(res.output, vec![0xdead_beef]);
    }

    #[test]
    #[should_panic(expected = "undefined label")]
    fn undefined_label_panics() {
        let mut a = Asm::new();
        a.j("nowhere");
        let _ = a.finish();
    }

    #[test]
    #[should_panic(expected = "label redefined")]
    fn duplicate_label_panics() {
        let mut a = Asm::new();
        a.label("x");
        a.label("x");
    }
}
