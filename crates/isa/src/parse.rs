//! Textual assembly: a parser for `.s`-style sources and a program-level
//! disassembler.
//!
//! The builder API ([`crate::asm::Asm`]) is the primary way workloads are
//! written, but a textual format makes the toolchain complete: programs can
//! be dumped, hand-edited and reloaded, and the disassembler gives
//! human-readable views of fetched instruction streams.
//!
//! Syntax:
//!
//! ```text
//! ; comments run to end of line            # or with '#'
//! .name my_program                          ; program name
//! .mem 1048576                              ; data memory size
//! .data 0x100                               ; set data cursor
//! .u64 1 2 0xdeadbeef                       ; 64-bit little-endian words
//! .bytes 0xde 0xad 7                        ; raw bytes
//!
//! start:                                    ; labels end with ':'
//!     li   r1, 10
//!     addi r2, r1, -5
//!     ld   r3, 8(r2)                        ; memory operands: imm(reg)
//!     st   r3, 0(r2)
//!     beq  r1, r2, start
//!     jal  r1, start
//!     jalr r2, r1, 0
//!     out  r1
//!     halt
//! ```

use crate::inst::{AluOp, BrCond, Inst};
use crate::program::{Program, DEFAULT_MEM_SIZE};
use crate::reg::{ArchReg, NUM_ARCH_REGS};
use std::collections::HashMap;
use std::fmt;

/// A parse failure, with the 1-based source line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<ArchReg, ParseError> {
    let idx: usize = tok
        .strip_prefix('r')
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| err(line, format!("expected register, got `{tok}`")))?;
    if idx >= NUM_ARCH_REGS {
        return Err(err(line, format!("register out of range: `{tok}`")));
    }
    Ok(ArchReg::new(idx))
}

fn parse_imm(tok: &str, line: usize) -> Result<i64, ParseError> {
    let (neg, body) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok),
    };
    let magnitude = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).map_err(|_| err(line, format!("bad immediate `{tok}`")))?
    } else {
        body.parse::<u64>()
            .map_err(|_| err(line, format!("bad immediate `{tok}`")))?
    };
    // Positive magnitudes up to u64::MAX are accepted as the i64 bit
    // pattern (so `0xffff_ffff_ffff_ffff` works); negative ones up to
    // 2^63, so `-9223372036854775808` (i64::MIN) round-trips without the
    // negation overflowing.
    if neg {
        if magnitude > 1u64 << 63 {
            return Err(err(line, format!("immediate out of range `{tok}`")));
        }
        Ok((magnitude as i64).wrapping_neg())
    } else {
        Ok(magnitude as i64)
    }
}

/// Splits `imm(reg)` memory-operand syntax.
fn parse_mem_operand(tok: &str, line: usize) -> Result<(i64, ArchReg), ParseError> {
    let open = tok
        .find('(')
        .ok_or_else(|| err(line, format!("expected imm(reg), got `{tok}`")))?;
    if !tok.ends_with(')') {
        return Err(err(line, format!("unterminated memory operand `{tok}`")));
    }
    let imm = if open == 0 {
        0
    } else {
        parse_imm(&tok[..open], line)?
    };
    let reg = parse_reg(&tok[open + 1..tok.len() - 1], line)?;
    Ok((imm, reg))
}

const ALU_R: [(&str, AluOp); 13] = [
    ("add", AluOp::Add),
    ("sub", AluOp::Sub),
    ("mul", AluOp::Mul),
    ("divu", AluOp::Divu),
    ("remu", AluOp::Remu),
    ("and", AluOp::And),
    ("or", AluOp::Or),
    ("xor", AluOp::Xor),
    ("sll", AluOp::Sll),
    ("srl", AluOp::Srl),
    ("sra", AluOp::Sra),
    ("slt", AluOp::Slt),
    ("sltu", AluOp::Sltu),
];

const ALU_I: [(&str, AluOp); 13] = [
    ("addi", AluOp::Add),
    ("subi", AluOp::Sub),
    ("muli", AluOp::Mul),
    ("divui", AluOp::Divu),
    ("remui", AluOp::Remu),
    ("andi", AluOp::And),
    ("ori", AluOp::Or),
    ("xori", AluOp::Xor),
    ("slli", AluOp::Sll),
    ("srli", AluOp::Srl),
    ("srai", AluOp::Sra),
    ("slti", AluOp::Slt),
    ("sltiu", AluOp::Sltu),
];

const BRANCHES: [(&str, BrCond); 6] = [
    ("beq", BrCond::Eq),
    ("bne", BrCond::Ne),
    ("blt", BrCond::Lt),
    ("bge", BrCond::Ge),
    ("bltu", BrCond::Ltu),
    ("bgeu", BrCond::Geu),
];

/// Parses a textual assembly source into a [`Program`].
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line for any syntax
/// problem, unknown mnemonic, bad operand or undefined label.
pub fn parse_asm(source: &str) -> Result<Program, ParseError> {
    struct PendingTarget {
        at: usize,
        label: String,
        line: usize,
    }
    let mut insts: Vec<Inst> = Vec::new();
    let mut labels: HashMap<String, usize> = HashMap::new();
    let mut fixups: Vec<PendingTarget> = Vec::new();
    let mut image: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut mem_size = DEFAULT_MEM_SIZE;
    let mut name = String::new();
    let mut data_cursor: u64 = 0;

    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let text = raw.split([';', '#']).next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        // Label definitions (possibly followed by an instruction).
        let mut rest = text;
        while let Some(colon) = rest.find(':') {
            let (label, tail) = rest.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                break;
            }
            if labels.insert(label.to_string(), insts.len()).is_some() {
                return Err(err(line, format!("label `{label}` redefined")));
            }
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }

        let mut parts = rest.split_whitespace();
        let mnemonic = parts.next().expect("non-empty");
        let operands: Vec<String> = parts
            .collect::<Vec<_>>()
            .join(" ")
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        let nops = operands.len();
        let want = |n: usize| -> Result<(), ParseError> {
            if nops == n {
                Ok(())
            } else {
                Err(err(
                    line,
                    format!("`{mnemonic}` takes {n} operands, got {nops}"),
                ))
            }
        };

        // Directives.
        match mnemonic {
            ".name" => {
                name = rest[".name".len()..].trim().to_string();
                continue;
            }
            ".mem" => {
                want(1)?;
                mem_size = parse_imm(&operands[0], line)? as usize;
                continue;
            }
            ".data" => {
                want(1)?;
                data_cursor = parse_imm(&operands[0], line)? as u64;
                continue;
            }
            ".u64" => {
                let mut bytes = Vec::new();
                for tok in rest[".u64".len()..].split_whitespace() {
                    bytes.extend_from_slice(&(parse_imm(tok, line)? as u64).to_le_bytes());
                }
                let len = bytes.len() as u64;
                image.push((data_cursor, bytes));
                data_cursor += len;
                continue;
            }
            ".bytes" => {
                let mut bytes = Vec::new();
                for tok in rest[".bytes".len()..].split_whitespace() {
                    let v = parse_imm(tok, line)?;
                    if !(0..=255).contains(&v) {
                        return Err(err(line, format!("byte out of range: `{tok}`")));
                    }
                    bytes.push(v as u8);
                }
                let len = bytes.len() as u64;
                image.push((data_cursor, bytes));
                data_cursor += len;
                continue;
            }
            _ => {}
        }

        // Instructions.
        let inst = if let Some(&(_, op)) = ALU_R.iter().find(|(m, _)| *m == mnemonic) {
            want(3)?;
            Inst::Alu {
                op,
                rd: parse_reg(&operands[0], line)?,
                rs1: parse_reg(&operands[1], line)?,
                rs2: parse_reg(&operands[2], line)?,
            }
        } else if let Some(&(_, op)) = ALU_I.iter().find(|(m, _)| *m == mnemonic) {
            want(3)?;
            Inst::AluI {
                op,
                rd: parse_reg(&operands[0], line)?,
                rs1: parse_reg(&operands[1], line)?,
                imm: parse_imm(&operands[2], line)?,
            }
        } else if let Some(&(_, cond)) = BRANCHES.iter().find(|(m, _)| *m == mnemonic) {
            want(3)?;
            fixups.push(PendingTarget {
                at: insts.len(),
                label: operands[2].clone(),
                line,
            });
            Inst::Br {
                cond,
                rs1: parse_reg(&operands[0], line)?,
                rs2: parse_reg(&operands[1], line)?,
                target: 0,
            }
        } else {
            match mnemonic {
                "li" => {
                    want(2)?;
                    Inst::Li {
                        rd: parse_reg(&operands[0], line)?,
                        imm: parse_imm(&operands[1], line)?,
                    }
                }
                "mv" => {
                    want(2)?;
                    Inst::AluI {
                        op: AluOp::Add,
                        rd: parse_reg(&operands[0], line)?,
                        rs1: parse_reg(&operands[1], line)?,
                        imm: 0,
                    }
                }
                "ld" | "ldw" | "ldb" => {
                    want(2)?;
                    let rd = parse_reg(&operands[0], line)?;
                    let (imm, rs1) = parse_mem_operand(&operands[1], line)?;
                    match mnemonic {
                        "ld" => Inst::Ld { rd, rs1, imm },
                        "ldw" => Inst::Ldw { rd, rs1, imm },
                        _ => Inst::Ldb { rd, rs1, imm },
                    }
                }
                "st" | "stw" | "stb" => {
                    want(2)?;
                    let rs2 = parse_reg(&operands[0], line)?;
                    let (imm, rs1) = parse_mem_operand(&operands[1], line)?;
                    match mnemonic {
                        "st" => Inst::St { rs1, rs2, imm },
                        "stw" => Inst::Stw { rs1, rs2, imm },
                        _ => Inst::Stb { rs1, rs2, imm },
                    }
                }
                "jal" => {
                    want(2)?;
                    fixups.push(PendingTarget {
                        at: insts.len(),
                        label: operands[1].clone(),
                        line,
                    });
                    Inst::Jal {
                        rd: parse_reg(&operands[0], line)?,
                        target: 0,
                    }
                }
                "j" => {
                    want(1)?;
                    fixups.push(PendingTarget {
                        at: insts.len(),
                        label: operands[0].clone(),
                        line,
                    });
                    let zero = ArchReg::new(0);
                    Inst::Br {
                        cond: BrCond::Eq,
                        rs1: zero,
                        rs2: zero,
                        target: 0,
                    }
                }
                "jalr" => {
                    want(3)?;
                    Inst::Jalr {
                        rd: parse_reg(&operands[0], line)?,
                        rs1: parse_reg(&operands[1], line)?,
                        imm: parse_imm(&operands[2], line)?,
                    }
                }
                "out" => {
                    want(1)?;
                    Inst::Out {
                        rs1: parse_reg(&operands[0], line)?,
                    }
                }
                "halt" => {
                    want(0)?;
                    Inst::Halt
                }
                "nop" => {
                    want(0)?;
                    Inst::Nop
                }
                other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
            }
        };
        insts.push(inst);
    }

    for f in fixups {
        // Numeric targets are allowed alongside labels (the disassembler
        // emits labels, but hand-written sources may jump by index).
        let pc = match labels.get(&f.label) {
            Some(&pc) => pc,
            None => parse_imm(&f.label, f.line)
                .ok()
                .filter(|&v| v >= 0 && (v as usize) <= insts.len())
                .map(|v| v as usize)
                .ok_or_else(|| err(f.line, format!("undefined label `{}`", f.label)))?,
        };
        match &mut insts[f.at] {
            Inst::Br { target, .. } | Inst::Jal { target, .. } => *target = pc,
            other => unreachable!("fixup on non-control {other}"),
        }
    }

    Ok(Program {
        insts,
        image,
        mem_size,
        name,
    })
}

/// Disassembles a program into parseable text, with generated labels
/// (`L<pc>:`) at every branch/jump target.
pub fn disassemble(program: &Program) -> String {
    use std::fmt::Write as _;
    let mut targets: Vec<usize> = program
        .insts
        .iter()
        .filter_map(|i| match *i {
            Inst::Br { target, .. } | Inst::Jal { target, .. } => Some(target),
            _ => None,
        })
        .collect();
    targets.sort_unstable();
    targets.dedup();
    let label_of = |pc: usize| format!("L{pc}");

    let mut s = String::new();
    if !program.name.is_empty() {
        let _ = writeln!(s, ".name {}", program.name);
    }
    if program.mem_size != DEFAULT_MEM_SIZE {
        let _ = writeln!(s, ".mem {}", program.mem_size);
    }
    for (addr, bytes) in &program.image {
        let _ = writeln!(s, ".data {addr:#x}");
        let _ = write!(s, ".bytes");
        for b in bytes {
            let _ = write!(s, " {b:#04x}");
        }
        let _ = writeln!(s);
    }
    for (pc, inst) in program.insts.iter().enumerate() {
        if targets.binary_search(&pc).is_ok() {
            let _ = writeln!(s, "{}:", label_of(pc));
        }
        let text = match *inst {
            Inst::Alu { op, rd, rs1, rs2 } => {
                let m = ALU_R.iter().find(|(_, o)| *o == op).expect("known op").0;
                format!("{m} {rd}, {rs1}, {rs2}")
            }
            Inst::AluI { op, rd, rs1, imm } => {
                let m = ALU_I.iter().find(|(_, o)| *o == op).expect("known op").0;
                format!("{m} {rd}, {rs1}, {imm}")
            }
            Inst::Li { rd, imm } => format!("li {rd}, {imm}"),
            Inst::Ld { rd, rs1, imm } => format!("ld {rd}, {imm}({rs1})"),
            Inst::Ldw { rd, rs1, imm } => format!("ldw {rd}, {imm}({rs1})"),
            Inst::Ldb { rd, rs1, imm } => format!("ldb {rd}, {imm}({rs1})"),
            Inst::St { rs1, rs2, imm } => format!("st {rs2}, {imm}({rs1})"),
            Inst::Stw { rs1, rs2, imm } => format!("stw {rs2}, {imm}({rs1})"),
            Inst::Stb { rs1, rs2, imm } => format!("stb {rs2}, {imm}({rs1})"),
            Inst::Br {
                cond,
                rs1,
                rs2,
                target,
            } => {
                let m = BRANCHES
                    .iter()
                    .find(|(_, c)| *c == cond)
                    .expect("known cond")
                    .0;
                format!("{m} {rs1}, {rs2}, {}", label_of(target))
            }
            Inst::Jal { rd, target } => format!("jal {rd}, {}", label_of(target)),
            Inst::Jalr { rd, rs1, imm } => format!("jalr {rd}, {rs1}, {imm}"),
            Inst::Out { rs1 } => format!("out {rs1}"),
            Inst::Halt => "halt".to_string(),
            Inst::Nop => "nop".to_string(),
        };
        let _ = writeln!(s, "    {text}");
    }
    // A trailing label for end-of-program targets.
    if targets.binary_search(&program.insts.len()).is_ok() {
        let _ = writeln!(s, "{}:", label_of(program.insts.len()));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emu::{Emulator, StopReason};

    #[test]
    fn parse_and_run_a_program() {
        let src = r#"
            ; triangular numbers
            .name tri
            li r1, 0
            li r2, 10
        loop:
            add r1, r1, r2
            addi r2, r2, -1
            bne r2, r0, loop
            out r1
            halt
        "#;
        let p = parse_asm(src).expect("parses");
        assert_eq!(p.name, "tri");
        let res = Emulator::new(&p).run(1000);
        assert_eq!(res.stop, StopReason::Halted);
        assert_eq!(res.output, vec![55]);
    }

    #[test]
    fn data_directives() {
        let src = r#"
            .data 0x40
            .u64 41 0x2a
            .bytes 0xff 1
            li r1, 0x40
            ld r2, 8(r1)
            out r2
            ldb r3, 16(r1)
            out r3
            halt
        "#;
        let p = parse_asm(src).expect("parses");
        let res = Emulator::new(&p).run(100);
        assert_eq!(res.output, vec![0x2a, 0xff]);
    }

    #[test]
    fn memory_operand_forms() {
        let p = parse_asm("ld r1, (r2)\nst r1, -8(r3)\nhalt").expect("parses");
        assert_eq!(
            p.insts[0],
            Inst::Ld {
                rd: ArchReg::new(1),
                rs1: ArchReg::new(2),
                imm: 0
            }
        );
        assert_eq!(
            p.insts[1],
            Inst::St {
                rs1: ArchReg::new(3),
                rs2: ArchReg::new(1),
                imm: -8
            }
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_asm("nop\nbogus r1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bogus"));

        let e = parse_asm("li r99, 0").unwrap_err();
        assert!(e.message.contains("out of range"));

        let e = parse_asm("beq r1, r2, nowhere").unwrap_err();
        assert!(e.message.contains("undefined label"));

        let e = parse_asm("add r1, r2").unwrap_err();
        assert!(e.message.contains("3 operands"));
    }

    #[test]
    fn numeric_branch_targets_allowed() {
        let p = parse_asm("nop\nbeq r0, r0, 0\nhalt").expect("parses");
        assert_eq!(
            p.insts[1],
            Inst::Br {
                cond: BrCond::Eq,
                rs1: ArchReg::new(0),
                rs2: ArchReg::new(0),
                target: 0
            }
        );
    }

    #[test]
    fn disassemble_then_reparse_is_identity() {
        // Round-trip every workload program through text.
        {
            let w = crate::asm::Asm::new()
                .li(ArchReg::new(1), 7)
                .out(ArchReg::new(1))
                .halt()
                .clone();
            let p = w.finish();
            let text = disassemble(&p);
            let q = parse_asm(&text).expect("reparses");
            assert_eq!(p.insts, q.insts);
        }
    }

    #[test]
    fn alu_immediate_mnemonics_round_trip() {
        // Fuzz regression: `subi`, `divui` and `remui` were missing from
        // the mnemonic table, so disassembling an `AluI` carrying those
        // ops panicked and the emitted text could not be reparsed.
        for op in [AluOp::Sub, AluOp::Divu, AluOp::Remu] {
            let p = Program::from_insts(vec![Inst::AluI {
                op,
                rd: ArchReg::new(1),
                rs1: ArchReg::new(2),
                imm: -3,
            }]);
            let text = disassemble(&p);
            let q = parse_asm(&text).expect("reparses");
            assert_eq!(p.insts, q.insts, "{op:?}");
        }
    }

    #[test]
    fn extreme_immediates_round_trip() {
        // Fuzz regression: `-9223372036854775808` (i64::MIN) was rejected
        // because the magnitude was parsed into i64 before negation, and
        // the hex spelling would have panicked on `-i64::MIN`.
        for (src, want) in [
            ("li r1, -9223372036854775808", i64::MIN),
            ("li r1, -0x8000000000000000", i64::MIN),
            ("li r1, 9223372036854775807", i64::MAX),
            ("li r1, 0xffffffffffffffff", -1),
        ] {
            let p = parse_asm(src).expect(src);
            assert_eq!(
                p.insts[0],
                Inst::Li {
                    rd: ArchReg::new(1),
                    imm: want
                },
                "{src}"
            );
        }
        // One past i64::MIN must be a diagnostic, not a panic.
        let e = parse_asm("li r1, -9223372036854775809").unwrap_err();
        assert!(e.message.contains("out of range") || e.message.contains("immediate"));
        // Round-trip i64::MIN through the disassembler too.
        let p = parse_asm("li r1, -9223372036854775808").unwrap();
        let q = parse_asm(&disassemble(&p)).expect("reparses");
        assert_eq!(p.insts, q.insts);
    }

    #[test]
    fn label_and_inline_instruction() {
        let p = parse_asm("start: nop\nj start").expect("parses");
        assert_eq!(p.insts.len(), 2);
        assert_eq!(
            p.insts[1],
            Inst::Br {
                cond: BrCond::Eq,
                rs1: ArchReg::new(0),
                rs2: ArchReg::new(0),
                target: 0
            }
        );
    }
}
