//! # idld-isa — Tiny-RISC ISA, assembler and architectural emulator
//!
//! This crate defines the instruction set executed by the out-of-order core
//! simulator (`idld-sim`) used to reproduce the IDLD paper (MICRO 2022).
//! The paper's bug-modeling study ran MiBench on gem5/x86-64; the study only
//! depends on how instructions *flow through register renaming*, not on the
//! ISA itself, so we substitute a small 64-bit load/store architecture that
//! is easy to emulate, assemble and reason about:
//!
//! * 32 general-purpose 64-bit logical registers (matching the paper's
//!   32-entry RAT),
//! * ALU register/immediate forms, 1/4/8-byte loads and stores,
//!   conditional branches, direct and indirect jumps with link,
//! * an [`Out`](inst::Inst::Out) instruction that appends a register value to
//!   the program's output stream — this makes Silent Data Corruption
//!   detection (paper §VI.C) a simple vector comparison,
//! * [`Halt`](inst::Inst::Halt) for normal termination.
//!
//! The [`emu::Emulator`] is the *golden architectural model*: a strictly
//! in-order interpreter with precise fault semantics, used both to validate
//! workloads against native Rust references and to cross-check the
//! out-of-order simulator's architectural results.
//!
//! ```
//! use idld_isa::asm::Asm;
//! use idld_isa::emu::{Emulator, StopReason};
//! use idld_isa::reg::ArchReg;
//!
//! let mut a = Asm::new();
//! let (r1, r2) = (ArchReg::new(1), ArchReg::new(2));
//! a.li(r1, 6);
//! a.li(r2, 7);
//! a.mul(r1, r1, r2);
//! a.out(r1);
//! a.halt();
//! let program = a.finish();
//!
//! let mut emu = Emulator::new(&program);
//! let result = emu.run(1_000);
//! assert_eq!(result.stop, StopReason::Halted);
//! assert_eq!(result.output, vec![42]);
//! ```

pub mod asm;
pub mod block;
pub mod emu;
pub mod inst;
pub mod mem;
pub mod parse;
pub mod program;
pub mod reg;

pub use asm::Asm;
pub use block::BlockStats;
pub use emu::{EmuFault, EmuResult, Emulator, StopReason};
pub use inst::{AluOp, BrCond, Inst, InstKind};
pub use mem::{MemFault, Memory};
pub use parse::{disassemble, parse_asm, ParseError};
pub use program::Program;
pub use reg::ArchReg;
