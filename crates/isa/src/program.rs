//! Executable programs: instruction stream plus initial data image.

use crate::inst::Inst;
use crate::mem::Memory;

/// Default data memory size for programs: 1 MiB.
pub const DEFAULT_MEM_SIZE: usize = 1 << 20;

/// A complete executable: instruction stream, initial data image and memory
/// size. Produced by [`crate::asm::Asm::finish`], consumed by the
/// architectural emulator and the out-of-order simulator.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Program {
    /// The instruction stream; program counters index into this vector.
    pub insts: Vec<Inst>,
    /// Initial data regions copied into memory before execution.
    pub image: Vec<(u64, Vec<u8>)>,
    /// Data memory size in bytes.
    pub mem_size: usize,
    /// Human-readable name (used in experiment reports).
    pub name: String,
}

impl Program {
    /// Creates a program from raw instructions with an empty data image.
    pub fn from_insts(insts: Vec<Inst>) -> Self {
        Program {
            insts,
            image: Vec::new(),
            mem_size: DEFAULT_MEM_SIZE,
            name: String::new(),
        }
    }

    /// Number of static instructions.
    #[inline]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the program has no instructions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Adds an initial data region at `addr`.
    pub fn add_image(&mut self, addr: u64, data: Vec<u8>) {
        self.image.push((addr, data));
    }

    /// Builds the initial data memory for one execution of this program.
    pub fn build_memory(&self) -> Memory {
        let mut m = Memory::new(self.mem_size);
        for (addr, data) in &self.image {
            m.write_image(*addr, data);
        }
        m
    }

    /// Fetches the instruction at `pc`, or `None` when `pc` runs off the end
    /// of the instruction stream (an architectural control-flow fault).
    #[inline]
    pub fn fetch(&self, pc: usize) -> Option<Inst> {
        self.insts.get(pc).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_built_from_image() {
        let mut p = Program::from_insts(vec![Inst::Halt]);
        p.mem_size = 128;
        p.add_image(16, vec![9, 8, 7]);
        let m = p.build_memory();
        assert_eq!(m.size(), 128);
        assert_eq!(m.read_image(16, 3), &[9, 8, 7]);
        assert_eq!(m.load(0, 8).unwrap(), 0);
    }

    #[test]
    fn fetch_bounds() {
        let p = Program::from_insts(vec![Inst::Nop, Inst::Halt]);
        assert_eq!(p.fetch(0), Some(Inst::Nop));
        assert_eq!(p.fetch(1), Some(Inst::Halt));
        assert_eq!(p.fetch(2), None);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }
}
