//! Architectural (logical) register identifiers.

use std::fmt;

/// Number of architectural registers in the ISA.
///
/// The paper's RRS configuration (§VI.A) uses a 32-entry RAT, i.e. 32 logical
/// registers, all of which participate in renaming (there is no hardwired
/// zero register).
pub const NUM_ARCH_REGS: usize = 32;

/// An architectural (logical) register identifier, `r0`..`r31`.
///
/// This is the *Ldst/Lsrc* namespace of the paper: the register names that
/// the Register Alias Table maps onto physical register identifiers.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArchReg(u8);

impl ArchReg {
    /// Creates a register identifier.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_ARCH_REGS`.
    #[inline]
    pub fn new(index: usize) -> Self {
        assert!(
            index < NUM_ARCH_REGS,
            "architectural register out of range: {index}"
        );
        ArchReg(index as u8)
    }

    /// The register's index, `0..NUM_ARCH_REGS`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterates over all architectural registers in ascending order.
    pub fn all() -> impl Iterator<Item = ArchReg> {
        (0..NUM_ARCH_REGS).map(ArchReg::new)
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Debug for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Shorthand constructor used pervasively by the workload assembly sources.
///
/// # Panics
///
/// Panics if `index >= NUM_ARCH_REGS`.
#[inline]
pub fn r(index: usize) -> ArchReg {
    ArchReg::new(index)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        for i in 0..NUM_ARCH_REGS {
            assert_eq!(ArchReg::new(i).index(), i);
        }
    }

    #[test]
    fn display() {
        assert_eq!(ArchReg::new(7).to_string(), "r7");
        assert_eq!(format!("{:?}", ArchReg::new(31)), "r31");
    }

    #[test]
    fn all_covers_every_register() {
        let v: Vec<_> = ArchReg::all().collect();
        assert_eq!(v.len(), NUM_ARCH_REGS);
        assert_eq!(v[0].index(), 0);
        assert_eq!(v[31].index(), 31);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let _ = ArchReg::new(NUM_ARCH_REGS);
    }
}
