//! Byte-addressed data memory with precise bounds checking.

use std::fmt;

/// A faulting memory access, reported with the offending address and width.
///
/// In the outcome classification of the paper (§VI.C) an architectural memory
/// fault at commit time lands a run in the **Crash** class.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemFault {
    /// The first byte address of the faulting access.
    pub addr: u64,
    /// The access width in bytes.
    pub width: usize,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "memory fault: {}-byte access at {:#x}",
            self.width, self.addr
        )
    }
}

impl std::error::Error for MemFault {}

/// Flat little-endian byte-addressed data memory.
///
/// Unaligned accesses are permitted (they are assembled from byte accesses),
/// keeping the architectural fault model down to a single cause: access
/// beyond the memory size.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Memory {
    bytes: Vec<u8>,
}

impl Memory {
    /// Creates a zero-initialized memory of `size` bytes.
    pub fn new(size: usize) -> Self {
        Memory {
            bytes: vec![0; size],
        }
    }

    /// The memory size in bytes.
    #[inline]
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    #[inline]
    fn check(&self, addr: u64, width: usize) -> Result<usize, MemFault> {
        let a = addr as usize;
        if (addr as usize as u64) == addr
            && a.checked_add(width)
                .is_some_and(|end| end <= self.bytes.len())
        {
            Ok(a)
        } else {
            Err(MemFault { addr, width })
        }
    }

    /// Loads `width` bytes (1, 4 or 8) little-endian, zero-extended to 64 bits.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] if any byte of the access is out of bounds.
    pub fn load(&self, addr: u64, width: usize) -> Result<u64, MemFault> {
        let a = self.check(addr, width)?;
        let mut v: u64 = 0;
        for i in (0..width).rev() {
            v = (v << 8) | self.bytes[a + i] as u64;
        }
        Ok(v)
    }

    /// [`Memory::load`] with the width known at compile time, so the
    /// byte-assembly loop specializes to one `from_le_bytes`. Used by the
    /// block interpreter's pre-decoded micro-ops; bounds semantics (and
    /// thus faults) are identical to the generic path.
    #[inline]
    pub fn load_w<const W: usize>(&self, addr: u64) -> Result<u64, MemFault> {
        let a = self.check(addr, W)?;
        let mut buf = [0u8; 8];
        buf[..W].copy_from_slice(&self.bytes[a..a + W]);
        Ok(u64::from_le_bytes(buf))
    }

    /// [`Memory::store`] with the width known at compile time; the
    /// write-side counterpart of [`Memory::load_w`].
    #[inline]
    pub fn store_w<const W: usize>(&mut self, addr: u64, value: u64) -> Result<(), MemFault> {
        let a = self.check(addr, W)?;
        self.bytes[a..a + W].copy_from_slice(&value.to_le_bytes()[..W]);
        Ok(())
    }

    /// Stores the low `width` bytes (1, 4 or 8) of `value` little-endian.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] if any byte of the access is out of bounds.
    pub fn store(&mut self, addr: u64, width: usize, value: u64) -> Result<(), MemFault> {
        let a = self.check(addr, width)?;
        for i in 0..width {
            self.bytes[a + i] = (value >> (8 * i)) as u8;
        }
        Ok(())
    }

    /// Loads a value *speculatively*: out-of-bounds accesses return `0`
    /// instead of faulting.
    ///
    /// The out-of-order simulator uses this for wrong-path loads, which must
    /// not fault (faults are architecturally raised only at commit).
    #[inline]
    pub fn load_speculative(&self, addr: u64, width: usize) -> u64 {
        self.load(addr, width).unwrap_or(0)
    }

    /// Bulk-copies `data` into memory starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the region does not fit; initial images are programmer
    /// errors, not simulated faults.
    pub fn write_image(&mut self, addr: u64, data: &[u8]) {
        let a = addr as usize;
        self.bytes[a..a + data.len()].copy_from_slice(data);
    }

    /// Reads `len` bytes starting at `addr` (for test assertions).
    ///
    /// # Panics
    ///
    /// Panics if the region is out of bounds.
    pub fn read_image(&self, addr: u64, len: usize) -> &[u8] {
        let a = addr as usize;
        &self.bytes[a..a + len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_load_round_trip() {
        let mut m = Memory::new(64);
        m.store(8, 8, 0x1122_3344_5566_7788).unwrap();
        assert_eq!(m.load(8, 8).unwrap(), 0x1122_3344_5566_7788);
        assert_eq!(m.load(8, 1).unwrap(), 0x88, "little endian");
        assert_eq!(m.load(12, 4).unwrap(), 0x1122_3344);
    }

    #[test]
    fn unaligned_access_allowed() {
        let mut m = Memory::new(64);
        m.store(3, 8, 0xdead_beef_cafe_f00d).unwrap();
        assert_eq!(m.load(3, 8).unwrap(), 0xdead_beef_cafe_f00d);
    }

    #[test]
    fn zero_extension() {
        let mut m = Memory::new(16);
        m.store(0, 1, 0xff).unwrap();
        assert_eq!(m.load(0, 8).unwrap(), 0xff);
        assert_eq!(m.load(0, 1).unwrap(), 0xff);
    }

    #[test]
    fn out_of_bounds_faults() {
        let m = Memory::new(16);
        assert_eq!(m.load(16, 1), Err(MemFault { addr: 16, width: 1 }));
        assert_eq!(m.load(9, 8), Err(MemFault { addr: 9, width: 8 }));
        assert!(
            m.load(u64::MAX, 8).is_err(),
            "address wraparound must fault"
        );
        assert!(m.load(u64::MAX - 3, 8).is_err());
    }

    #[test]
    fn speculative_load_never_faults() {
        let m = Memory::new(16);
        assert_eq!(m.load_speculative(1 << 40, 8), 0);
        assert_eq!(m.load_speculative(0, 8), 0);
    }

    #[test]
    fn image_round_trip() {
        let mut m = Memory::new(32);
        m.write_image(4, &[1, 2, 3]);
        assert_eq!(m.read_image(4, 3), &[1, 2, 3]);
        assert_eq!(m.load(4, 1).unwrap(), 1);
    }

    #[test]
    fn fault_display() {
        let f = MemFault {
            addr: 0x20,
            width: 4,
        };
        assert_eq!(f.to_string(), "memory fault: 4-byte access at 0x20");
    }
}
