//! The 2-way SMT core simulator: two architectural contexts over one
//! shared rename backend.
//!
//! Two hardware threads — each with a private program counter, data
//! memory, output stream and architectural register mapping — share one
//! free list, one physical register file and one rename/commit backend
//! ([`idld_rrs::SmtRrs`]). The pipeline is in-order past rename (no
//! wrong-path speculation): operands are read at rename, results are
//! written to the shared PRF immediately, and instructions retire from
//! their thread's private ROB partition after a per-kind execution
//! latency. This is the organization in which a leaked or duplicated
//! PdstID crosses the thread boundary: a corrupted shared-FL transfer or
//! a mis-steered thread-select mux makes one thread's value
//! architecturally visible to the other.
//!
//! Thread select is deterministic round-robin with stall skip: cycle `c`
//! prefers thread `c mod 2` for fetch/rename; if that thread cannot
//! advance (halted, crashed, or out of rename resources) the other
//! thread takes the slot. Commit drains both threads every cycle, thread
//! 0 first. Every scheduling decision is a pure function of simulator
//! state, so runs are bit-for-bit reproducible and snapshot-fork
//! continues exactly as if never paused.

use crate::config::SimConfig;
use crate::result::{CrashCause, SimStop};
use crate::stats::SimStats;
use crate::trace::{CommitTrace, Divergence, TraceMonitor};
use idld_core::CheckerSet;
use idld_isa::{Inst, InstKind, Memory, Program};
use idld_obs::{NullRecorder, ObsEvent, Recorder, RecorderState};
use idld_rrs::{ContentSnapshot, FaultHook, RrsAssert, SmtRrs, NUM_THREADS};
use std::collections::VecDeque;

/// Bit position used to tag commit-trace program counters with the
/// committing hardware thread (both threads start at pc 0, so untagged
/// pcs would collide). Programs are bounded far below `2^30`
/// instructions.
const TRACE_THREAD_BIT: usize = 30;

/// One in-flight (renamed, not yet retired) instruction of one thread.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Pending {
    /// Static program counter, for the commit trace.
    pc: u32,
    /// Global rename sequence number.
    seq: u64,
    /// Cycle the execution latency elapses; committable from then on.
    done: u64,
    /// Value appended to the thread's output stream at commit (`Out`).
    out_val: Option<u64>,
    /// Committing this entry architecturally halts the thread.
    is_halt: bool,
}

/// The private state of one hardware thread.
#[derive(Clone, PartialEq, Debug)]
struct ThreadCtx {
    /// Next fetch pc.
    pc: usize,
    /// No further instructions enter the pipeline (halt renamed or a
    /// fault is pending delivery).
    fetch_stopped: bool,
    /// The halt retired; the context is architecturally finished.
    halted: bool,
    /// An architectural fault awaiting in-order delivery once the
    /// thread's older instructions have retired.
    crash: Option<CrashCause>,
    /// Private data memory.
    mem: Memory,
    /// Private output stream.
    output: Vec<u64>,
    /// Instructions committed by this thread.
    committed: u64,
    /// In-flight instructions, in program order.
    pending: VecDeque<Pending>,
}

impl ThreadCtx {
    fn new(program: &Program) -> Self {
        ThreadCtx {
            pc: 0,
            fetch_stopped: false,
            halted: false,
            crash: None,
            mem: program.build_memory(),
            output: Vec::new(),
            committed: 0,
            pending: VecDeque::new(),
        }
    }

    /// True while the thread still wants frontend slots.
    fn wants_fetch(&self) -> bool {
        !self.fetch_stopped
    }
}

/// The complete outcome of one SMT run.
#[derive(Clone, PartialEq, Debug)]
pub struct SmtRunResult {
    /// Why the run stopped.
    pub stop: SimStop,
    /// Total cycles simulated.
    pub cycles: u64,
    /// Instructions committed across both threads.
    pub committed: u64,
    /// Per-thread output streams.
    pub outputs: [Vec<u64>; NUM_THREADS],
    /// The recorded commit trace (thread-tagged pcs) — populated only
    /// when no golden trace was supplied (this *is* a golden run).
    pub trace: CommitTrace,
    /// First divergences from the golden trace, when one was supplied.
    pub divergence: Divergence,
    /// Census of PdstID locations at the end of the run.
    pub final_contents: ContentSnapshot,
    /// Microarchitectural statistics.
    pub stats: SimStats,
}

impl SmtRunResult {
    /// True if the run halted with both threads' outputs equal to their
    /// single-thread architectural references.
    pub fn outputs_match(&self, golden: [&[u64]; NUM_THREADS]) -> bool {
        self.stop == SimStop::Halted && (0..NUM_THREADS).all(|t| self.outputs[t] == golden[t])
    }
}

/// Complete mutable state of an [`SmtSimulator`] plus its attached
/// checkers (and optionally recorder), captured at a cycle boundary.
#[derive(Clone)]
pub struct SmtSnapshot {
    cycle: u64,
    seq: u64,
    committed: u64,
    stalled_cycles: u64,
    last_thread: Option<u8>,
    smt: SmtRrs,
    prf: Vec<u64>,
    ctx: [ThreadCtx; NUM_THREADS],
    stats: SimStats,
    checkers: CheckerSet,
    recorder: RecorderState,
}

impl SmtSnapshot {
    /// The cycle the snapshot was taken at.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Total committed instructions at capture.
    pub fn committed(&self) -> u64 {
        self.committed
    }
}

impl std::fmt::Debug for SmtSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmtSnapshot")
            .field("cycle", &self.cycle)
            .field("committed", &self.committed)
            .finish()
    }
}

/// A resumable SMT run (the SMT counterpart of
/// [`crate::SegmentedRun`]): holds the commit trace / divergence monitor
/// across pause points so snapshot-fork joins the golden comparison
/// mid-trace.
pub struct SmtSegmentedRun<'g> {
    trace: CommitTrace,
    monitor: Option<TraceMonitor<'g>>,
    record: bool,
    max_cycles: u64,
}

impl<'g> SmtSegmentedRun<'g> {
    /// Runs until `pause_at` (exclusive upper cycle bound) or a stop,
    /// whichever comes first. Returns `Some(stop)` when the run ended.
    pub fn step_until_observed(
        &mut self,
        sim: &mut SmtSimulator<'_>,
        hook: &mut impl FaultHook,
        checkers: &mut CheckerSet,
        pause_at: u64,
        recorder: &mut impl Recorder,
    ) -> Option<SimStop> {
        sim.run_span(
            hook,
            checkers,
            &mut self.trace,
            &mut self.monitor,
            self.record,
            self.max_cycles.min(pause_at),
            recorder,
        )
        .or(if pause_at >= self.max_cycles {
            Some(SimStop::CycleLimit)
        } else {
            None
        })
    }

    /// Runs to completion (or the cycle budget).
    pub fn run_to_end_observed(
        &mut self,
        sim: &mut SmtSimulator<'_>,
        hook: &mut impl FaultHook,
        checkers: &mut CheckerSet,
        recorder: &mut impl Recorder,
    ) -> SimStop {
        sim.run_span(
            hook,
            checkers,
            &mut self.trace,
            &mut self.monitor,
            self.record,
            self.max_cycles,
            recorder,
        )
        .unwrap_or(SimStop::CycleLimit)
    }

    /// Packages the final result once a stop was returned.
    pub fn finish(
        self,
        sim: &mut SmtSimulator<'_>,
        stop: SimStop,
        checkers: &mut CheckerSet,
    ) -> SmtRunResult {
        sim.finish_run(stop, self.trace, self.monitor, checkers)
    }
}

/// The 2-way SMT simulator. See the module docs for the machine model.
pub struct SmtSimulator<'p> {
    programs: [&'p Program; NUM_THREADS],
    cfg: SimConfig,
    smt: SmtRrs,
    /// Shared physical register file (values).
    prf: Vec<u64>,
    ctx: [ThreadCtx; NUM_THREADS],
    cycle: u64,
    seq: u64,
    committed: u64,
    stalled_cycles: u64,
    /// Last thread granted the frontend, for change-only
    /// [`ObsEvent::ThreadSwitch`] markers.
    last_thread: Option<u8>,
    stats: SimStats,
}

impl<'p> SmtSimulator<'p> {
    /// Creates a 2-thread simulator over `programs` at configuration
    /// `cfg`.
    ///
    /// # Panics
    ///
    /// Panics when the rename configuration cannot host two contexts
    /// (see [`SmtRrs::new`]).
    pub fn new(programs: [&'p Program; NUM_THREADS], cfg: SimConfig) -> Self {
        let smt = SmtRrs::new(cfg.rrs);
        SmtSimulator {
            programs,
            prf: vec![0; cfg.rrs.num_phys],
            ctx: [ThreadCtx::new(programs[0]), ThreadCtx::new(programs[1])],
            cycle: 0,
            seq: 0,
            committed: 0,
            stalled_cycles: 0,
            last_thread: None,
            stats: SimStats::default(),
            smt,
            cfg,
        }
    }

    /// Current cycle.
    #[inline]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Total committed instructions.
    #[inline]
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// The shared rename subsystem.
    #[inline]
    pub fn smt(&self) -> &SmtRrs {
        &self.smt
    }

    /// Thread `t`'s architectural value of logical register `arch`
    /// (through its RAT into the shared PRF).
    pub fn arch_reg(&self, t: usize, arch: usize) -> u64 {
        self.prf_read(self.smt.rat_lookup(t, arch).index())
    }

    /// Thread `t`'s private data memory.
    pub fn mem(&self, t: usize) -> &Memory {
        &self.ctx[t].mem
    }

    /// Thread `t`'s output stream so far.
    pub fn output(&self, t: usize) -> &[u64] {
        &self.ctx[t].output
    }

    /// Thread `t`'s next fetch pc.
    pub fn pc(&self, t: usize) -> usize {
        self.ctx[t].pc
    }

    #[inline]
    fn prf_read(&self, idx: usize) -> u64 {
        // A value-corrupted PdstID can point outside the PRF; reads of
        // such ids return 0 rather than tearing down the simulation (the
        // checkers flag the corruption, the campaign classifies the
        // architectural damage).
        self.prf.get(idx).copied().unwrap_or(0)
    }

    #[inline]
    fn prf_write(&mut self, idx: usize, v: u64) {
        if let Some(slot) = self.prf.get_mut(idx) {
            *slot = v;
        }
    }

    fn latency_of(&self, kind: InstKind) -> u64 {
        match kind {
            InstKind::Alu | InstKind::Out | InstKind::Halt => self.cfg.lat_alu,
            InstKind::MulDiv => self.cfg.lat_muldiv,
            InstKind::Load => self.cfg.lat_load,
            InstKind::Store => self.cfg.lat_store,
            InstKind::Branch | InstKind::Jump | InstKind::JumpInd => self.cfg.lat_branch,
        }
    }

    /// Runs to completion (halt of both threads / crash / assert) or
    /// `max_cycles`.
    pub fn run(
        &mut self,
        hook: &mut impl FaultHook,
        checkers: &mut CheckerSet,
        golden: Option<&CommitTrace>,
        max_cycles: u64,
    ) -> SmtRunResult {
        self.run_observed(hook, checkers, golden, max_cycles, &mut NullRecorder)
    }

    /// [`SmtSimulator::run`] with an event recorder attached.
    pub fn run_observed(
        &mut self,
        hook: &mut impl FaultHook,
        checkers: &mut CheckerSet,
        golden: Option<&CommitTrace>,
        max_cycles: u64,
        recorder: &mut impl Recorder,
    ) -> SmtRunResult {
        let mut seg = self.begin_run(golden, max_cycles);
        let stop = seg.run_to_end_observed(self, hook, checkers, recorder);
        seg.finish(self, stop, checkers)
    }

    /// Starts a resumable run (for pause/snapshot drivers). When this
    /// simulator was restored from a snapshot mid-trace, the divergence
    /// monitor joins the golden comparison at the restored commit
    /// position.
    pub fn begin_run<'g>(
        &self,
        golden: Option<&'g CommitTrace>,
        max_cycles: u64,
    ) -> SmtSegmentedRun<'g> {
        SmtSegmentedRun {
            trace: CommitTrace::new(),
            monitor: golden.map(|g| TraceMonitor::new_at(g, self.committed as usize)),
            record: golden.is_none(),
            max_cycles,
        }
    }

    /// Captures the complete mutable state of this simulator, the
    /// attached `checkers` and the `recorder`, such that
    /// [`SmtSimulator::restore_observed`] continues bit-for-bit
    /// identically (events included) to never having stopped.
    pub fn snapshot_observed(
        &self,
        checkers: &CheckerSet,
        recorder: &impl Recorder,
    ) -> SmtSnapshot {
        SmtSnapshot {
            cycle: self.cycle,
            seq: self.seq,
            committed: self.committed,
            stalled_cycles: self.stalled_cycles,
            last_thread: self.last_thread,
            smt: self.smt.clone(),
            prf: self.prf.clone(),
            ctx: self.ctx.clone(),
            stats: self.stats,
            checkers: checkers.clone(),
            recorder: recorder.state(),
        }
    }

    /// [`SmtSimulator::snapshot_observed`] without a recorder.
    pub fn snapshot(&self, checkers: &CheckerSet) -> SmtSnapshot {
        self.snapshot_observed(checkers, &NullRecorder)
    }

    /// Restores this simulator, `checkers` and `recorder` to `snap`'s
    /// captured state. The simulator must have been created over the
    /// same programs and configuration.
    pub fn restore_observed(
        &mut self,
        snap: &SmtSnapshot,
        checkers: &mut CheckerSet,
        recorder: &mut impl Recorder,
    ) {
        self.cycle = snap.cycle;
        self.seq = snap.seq;
        self.committed = snap.committed;
        self.stalled_cycles = snap.stalled_cycles;
        self.last_thread = snap.last_thread;
        self.smt = snap.smt.clone();
        self.prf = snap.prf.clone();
        self.ctx = snap.ctx.clone();
        self.stats = snap.stats;
        *checkers = snap.checkers.clone();
        recorder.restore_state(&snap.recorder);
    }

    /// [`SmtSimulator::restore_observed`] without a recorder.
    pub fn restore(&mut self, snap: &SmtSnapshot, checkers: &mut CheckerSet) {
        self.restore_observed(snap, checkers, &mut NullRecorder);
    }

    /// The core loop: simulates cycles until a stop or `until` (exclusive
    /// upper cycle bound, typically the budget or a pause point).
    #[allow(clippy::too_many_arguments)]
    fn run_span(
        &mut self,
        hook: &mut impl FaultHook,
        checkers: &mut CheckerSet,
        trace: &mut CommitTrace,
        monitor: &mut Option<TraceMonitor<'_>>,
        record: bool,
        until: u64,
        recorder: &mut impl Recorder,
    ) -> Option<SimStop> {
        while self.cycle < until {
            hook.begin_cycle(self.cycle);
            if let Err(a) = self.frontend(hook, checkers, recorder) {
                self.end_cycle(hook, checkers, recorder);
                return Some(SimStop::Assert(a));
            }
            match self.commit(hook, checkers, trace, monitor, record, recorder) {
                Ok(()) => {}
                Err(stop) => {
                    self.end_cycle(hook, checkers, recorder);
                    return Some(stop);
                }
            }
            // In-order delivery of pending architectural faults: once the
            // faulting thread's older instructions have all retired, the
            // crash stops the run (thread 0 checked first — deterministic).
            for t in 0..NUM_THREADS {
                if self.ctx[t].pending.is_empty() {
                    if let Some(cause) = self.ctx[t].crash {
                        self.end_cycle(hook, checkers, recorder);
                        return Some(SimStop::Crash(cause));
                    }
                }
            }
            let done = self.ctx.iter().all(|c| c.halted && c.pending.is_empty());
            self.end_cycle(hook, checkers, recorder);
            if done {
                return Some(SimStop::Halted);
            }
        }
        None
    }

    /// Fetch/rename/execute for the thread winning this cycle's slot.
    fn frontend(
        &mut self,
        hook: &mut impl FaultHook,
        checkers: &mut CheckerSet,
        recorder: &mut impl Recorder,
    ) -> Result<(), RrsAssert> {
        let preferred = (self.cycle % NUM_THREADS as u64) as usize;
        let mut renamed_any = false;
        for cand in [preferred, 1 - preferred] {
            if !self.ctx[cand].wants_fetch() {
                continue;
            }
            let n = self.rename_thread(cand, hook, checkers, recorder)?;
            if n > 0 {
                renamed_any = true;
                if self.last_thread != Some(cand as u8) {
                    self.last_thread = Some(cand as u8);
                    recorder.record(self.cycle, ObsEvent::ThreadSwitch { t: cand as u8 });
                }
                break; // One thread owns the frontend per cycle.
            }
        }
        if !renamed_any && self.ctx.iter().any(|c| c.wants_fetch()) {
            self.stats.frontend_stalls += 1;
        }
        Ok(())
    }

    /// Renames up to `width` instructions of thread `t` this cycle;
    /// returns how many entered the pipeline.
    fn rename_thread(
        &mut self,
        t: usize,
        hook: &mut impl FaultHook,
        checkers: &mut CheckerSet,
        recorder: &mut impl Recorder,
    ) -> Result<usize, RrsAssert> {
        let mut renamed = 0;
        for _ in 0..self.cfg.width() {
            if self.ctx[t].fetch_stopped {
                break;
            }
            let pc = self.ctx[t].pc;
            let Some(inst) = self.programs[t].fetch(pc) else {
                self.ctx[t].fetch_stopped = true;
                self.ctx[t].crash = Some(CrashCause::InvalidPc(pc));
                break;
            };
            let dest = inst.dest();
            if !self.smt.can_rename(t, usize::from(dest.is_some()), 1) {
                break;
            }
            recorder.record(self.cycle, ObsEvent::Fetch { pc: pc as u32 });
            // Operand read through the RAT *before* this instruction's
            // rename updates it (register read-after-write semantics).
            let src = inst.sources().map(|s| match s {
                Some(r) => self.arch_reg(t, r.index()),
                None => 0,
            });
            // Architectural execution, mirroring the emulator exactly.
            let mut next_pc = pc + 1;
            let mut value: Option<u64> = None;
            let mut out_val: Option<u64> = None;
            let mut is_halt = false;
            match inst {
                Inst::Alu { op, .. } => value = Some(op.apply(src[0], src[1])),
                Inst::AluI { op, imm, .. } => value = Some(op.apply(src[0], imm as u64)),
                Inst::Li { imm, .. } => value = Some(imm as u64),
                Inst::Ld { imm, .. } | Inst::Ldw { imm, .. } | Inst::Ldb { imm, .. } => {
                    let width = inst.mem_width().expect("load has a width");
                    let addr = src[0].wrapping_add(imm as u64);
                    match self.ctx[t].mem.load(addr, width) {
                        Ok(v) => value = Some(v),
                        Err(e) => {
                            self.ctx[t].fetch_stopped = true;
                            self.ctx[t].crash = Some(CrashCause::MemFault {
                                addr: e.addr,
                                width: e.width,
                            });
                            break;
                        }
                    }
                }
                Inst::St { imm, .. } | Inst::Stw { imm, .. } | Inst::Stb { imm, .. } => {
                    let width = inst.mem_width().expect("store has a width");
                    let addr = src[0].wrapping_add(imm as u64);
                    if let Err(e) = self.ctx[t].mem.store(addr, width, src[1]) {
                        self.ctx[t].fetch_stopped = true;
                        self.ctx[t].crash = Some(CrashCause::MemFault {
                            addr: e.addr,
                            width: e.width,
                        });
                        break;
                    }
                    self.stats.stores += 1;
                }
                Inst::Br { cond, target, .. } => {
                    self.stats.branches += 1;
                    if cond.eval(src[0], src[1]) {
                        next_pc = target;
                    }
                }
                Inst::Jal { target, .. } => {
                    value = Some((pc + 1) as u64);
                    next_pc = target;
                }
                Inst::Jalr { imm, .. } => {
                    let target = src[0].wrapping_add(imm as u64);
                    value = Some((pc + 1) as u64);
                    next_pc = target.min(usize::MAX as u64) as usize;
                }
                Inst::Out { .. } => out_val = Some(src[0]),
                Inst::Halt => {
                    self.ctx[t].fetch_stopped = true;
                    is_halt = true;
                }
                Inst::Nop => {}
            }
            if matches!(inst.kind(), InstKind::Load) {
                self.stats.loads += 1;
            }
            // Rename: one-instruction group, so the thread-select mux is
            // consulted (and corruptible) per renamed instruction.
            let allocs = self
                .smt
                .rename_group(t, &[dest.map(|r| r.index())], hook, checkers)?;
            let pdst = allocs[0];
            if let (Some(v), Some(p)) = (value, pdst) {
                self.prf_write(p.index(), v);
            }
            let seq = self.seq;
            self.seq += 1;
            self.stats.renamed += 1;
            self.stats.issued += 1;
            recorder.record(
                self.cycle,
                ObsEvent::Rename {
                    pc: pc as u32,
                    seq,
                    pdst: pdst.map(|p| p.0),
                    eliminated: false,
                },
            );
            self.ctx[t].pending.push_back(Pending {
                pc: pc as u32,
                seq,
                done: self.cycle + self.latency_of(inst.kind()),
                out_val,
                is_halt,
            });
            self.ctx[t].pc = next_pc;
            renamed += 1;
            // The frontend cannot fetch past a control redirect (or the
            // halt) in the same cycle.
            if inst.is_control() || is_halt {
                break;
            }
        }
        Ok(renamed)
    }

    /// Per-thread in-order commit of latency-elapsed entries, thread 0
    /// first.
    #[allow(clippy::too_many_arguments)]
    fn commit(
        &mut self,
        hook: &mut impl FaultHook,
        checkers: &mut CheckerSet,
        trace: &mut CommitTrace,
        monitor: &mut Option<TraceMonitor<'_>>,
        record: bool,
        recorder: &mut impl Recorder,
    ) -> Result<(), SimStop> {
        for t in 0..NUM_THREADS {
            for _ in 0..self.cfg.width() {
                let Some(front) = self.ctx[t].pending.front() else {
                    break;
                };
                if front.done > self.cycle {
                    break;
                }
                let entry = self.ctx[t].pending.pop_front().expect("front exists");
                self.smt
                    .commit_head(t, hook, checkers)
                    .map_err(SimStop::Assert)?;
                if let Some(v) = entry.out_val {
                    self.ctx[t].output.push(v);
                }
                if entry.is_halt {
                    self.ctx[t].halted = true;
                }
                self.ctx[t].committed += 1;
                self.committed += 1;
                self.stats.committed += 1;
                let tagged = entry.pc as usize | (t << TRACE_THREAD_BIT);
                if record {
                    trace.push(tagged, self.cycle);
                }
                if let Some(m) = monitor {
                    m.observe(tagged, self.cycle);
                }
                recorder.record(
                    self.cycle,
                    ObsEvent::Commit {
                        pc: tagged as u32,
                        seq: entry.seq,
                    },
                );
            }
        }
        Ok(())
    }

    fn end_cycle(
        &mut self,
        hook: &impl FaultHook,
        checkers: &mut CheckerSet,
        recorder: &mut impl Recorder,
    ) {
        let window: usize = self.ctx.iter().map(|c| c.pending.len()).sum();
        self.stats.occupancy_sum += window as u64;
        checkers.end_cycle(self.cycle);
        if window == 0 {
            checkers.on_pipeline_empty(self.cycle);
        }
        if recorder.enabled() {
            recorder.record(
                self.cycle,
                ObsEvent::Occupancy {
                    window: window as u16,
                    fl_free: self.smt.free_regs() as u16,
                    rob: ((0..NUM_THREADS).map(|t| self.smt.rob_len(t)).sum::<usize>()) as u16,
                    rht: 0,
                },
            );
            if let Some(code) = checkers.xor_code() {
                recorder.record(self.cycle, ObsEvent::CheckerCode { code });
            }
            if let Some((_, site)) = hook.activation() {
                recorder.record(self.cycle, ObsEvent::FaultInjected { site });
            }
            checkers.for_each_detection(|name, d| {
                recorder.record(
                    self.cycle,
                    ObsEvent::Detection {
                        checker: name,
                        kind: d.kind.label(),
                        at: d.cycle,
                    },
                );
            });
        }
        self.cycle += 1;
    }

    fn finish_run(
        &mut self,
        stop: SimStop,
        trace: CommitTrace,
        monitor: Option<TraceMonitor<'_>>,
        checkers: &mut CheckerSet,
    ) -> SmtRunResult {
        if stop == SimStop::Halted {
            // The pipeline is architecturally drained: give the
            // empty-point checkers their final check.
            checkers.end_cycle(self.cycle);
            checkers.on_pipeline_empty(self.cycle);
        }
        let divergence = match monitor {
            Some(mut m) => m.finish(self.cycle),
            None => Divergence::default(),
        };
        self.stats.cycles = self.cycle;
        SmtRunResult {
            stop,
            cycles: self.cycle,
            committed: self.committed,
            outputs: [
                std::mem::take(&mut self.ctx[0].output),
                std::mem::take(&mut self.ctx[1].output),
            ],
            trace,
            divergence,
            final_contents: self.smt.contents(),
            stats: self.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idld_core::{BitVectorChecker, CounterChecker, SmtIdldChecker};
    use idld_isa::reg::r;
    use idld_isa::{Asm, Emulator};
    use idld_rrs::NoFaults;

    const BUDGET: u64 = 2_000_000;

    fn fib_program(n: u64) -> Program {
        let mut a = Asm::new();
        // r1=a r2=b r3=i r4=n
        a.li(r(1), 0).li(r(2), 1).li(r(3), 0).li(r(4), n as i64);
        a.label("loop");
        a.out(r(1));
        a.add(r(5), r(1), r(2));
        a.mv(r(1), r(2));
        a.mv(r(2), r(5));
        a.addi(r(3), r(3), 1);
        a.blt(r(3), r(4), "loop");
        a.halt();
        a.finish()
    }

    fn store_program() -> Program {
        let mut a = Asm::new();
        a.li(r(1), 7).li(r(2), 64);
        a.st(r(1), r(2), 0);
        a.ld(r(3), r(2), 0);
        a.out(r(3));
        a.halt();
        a.finish()
    }

    fn checkers(cfg: &SimConfig) -> CheckerSet {
        let mut c = CheckerSet::new();
        c.push(Box::new(SmtIdldChecker::new(&cfg.rrs)));
        c.push(Box::new(BitVectorChecker::new_smt(&cfg.rrs)));
        c.push(Box::new(CounterChecker::new_smt(&cfg.rrs)));
        c
    }

    fn emu_output(p: &Program) -> Vec<u64> {
        Emulator::new(p).run(1_000_000).output
    }

    #[test]
    fn two_threads_match_their_single_thread_references() {
        let (pa, pb) = (fib_program(10), store_program());
        let cfg = SimConfig::default();
        let mut cset = checkers(&cfg);
        let mut sim = SmtSimulator::new([&pa, &pb], cfg);
        let res = sim.run(&mut NoFaults, &mut cset, None, BUDGET);
        assert_eq!(res.stop, SimStop::Halted);
        assert_eq!(res.outputs[0], emu_output(&pa));
        assert_eq!(res.outputs[1], emu_output(&pb));
        assert!(res.outputs_match([&emu_output(&pa), &emu_output(&pb)]));
        assert!(res.final_contents.is_exact_partition());
        assert!(
            cset.detections().iter().all(|(_, d)| d.is_none()),
            "clean SMT run must not trip any checker"
        );
        assert_eq!(res.committed, res.stats.committed);
    }

    #[test]
    fn same_program_on_both_threads_is_isolated() {
        let p = fib_program(12);
        let cfg = SimConfig::default();
        let mut cset = checkers(&cfg);
        let mut sim = SmtSimulator::new([&p, &p], cfg);
        let res = sim.run(&mut NoFaults, &mut cset, None, BUDGET);
        assert_eq!(res.stop, SimStop::Halted);
        let golden = emu_output(&p);
        assert_eq!(res.outputs[0], golden);
        assert_eq!(res.outputs[1], golden);
    }

    #[test]
    fn memories_are_private_per_thread() {
        let p = store_program();
        let q = fib_program(3);
        let cfg = SimConfig::default();
        let mut cset = checkers(&cfg);
        let mut sim = SmtSimulator::new([&p, &q], cfg);
        let res = sim.run(&mut NoFaults, &mut cset, None, BUDGET);
        assert_eq!(res.stop, SimStop::Halted);
        assert_eq!(sim.mem(0).load(64, 8).unwrap(), 7);
        assert_eq!(sim.mem(1).load(64, 8).unwrap(), 0, "t1's memory untouched");
    }

    #[test]
    fn invalid_pc_crashes_in_order() {
        let mut a = Asm::new();
        a.li(r(1), 3);
        a.out(r(1));
        let runaway = a.finish(); // runs off the end: InvalidPc(2)
        let other = fib_program(4);
        let cfg = SimConfig::default();
        let mut cset = checkers(&cfg);
        let mut sim = SmtSimulator::new([&runaway, &other], cfg);
        let res = sim.run(&mut NoFaults, &mut cset, None, BUDGET);
        assert_eq!(res.stop, SimStop::Crash(CrashCause::InvalidPc(2)));
        // The older instructions retired before delivery.
        assert_eq!(res.outputs[0], vec![3]);
    }

    #[test]
    fn cycle_budget_stops_with_limit() {
        let p = fib_program(1_000_000);
        let cfg = SimConfig::default();
        let mut cset = checkers(&cfg);
        let mut sim = SmtSimulator::new([&p, &p], cfg);
        let res = sim.run(&mut NoFaults, &mut cset, None, 200);
        assert_eq!(res.stop, SimStop::CycleLimit);
        assert_eq!(res.cycles, 200);
    }

    #[test]
    fn runs_are_deterministic() {
        let (pa, pb) = (fib_program(9), store_program());
        let cfg = SimConfig::default();
        let run = || {
            let mut cset = checkers(&cfg);
            let mut sim = SmtSimulator::new([&pa, &pb], cfg);
            sim.run(&mut NoFaults, &mut cset, None, BUDGET)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn snapshot_fork_resumes_identically() {
        let (pa, pb) = (fib_program(14), store_program());
        let cfg = SimConfig::default();
        let mut cset = checkers(&cfg);
        let mut sim = SmtSimulator::new([&pa, &pb], cfg);
        let cold = sim.run(&mut NoFaults, &mut cset, None, BUDGET);
        assert_eq!(cold.stop, SimStop::Halted);
        let pause = cold.cycles / 2;

        let mut cset1 = checkers(&cfg);
        let mut sim1 = SmtSimulator::new([&pa, &pb], cfg);
        let mut seg1 = sim1.begin_run(None, BUDGET);
        let stop = seg1.step_until_observed(
            &mut sim1,
            &mut NoFaults,
            &mut cset1,
            pause,
            &mut NullRecorder,
        );
        assert!(stop.is_none());
        let snap = sim1.snapshot(&cset1);

        let mut cset2 = CheckerSet::new();
        let mut sim2 = SmtSimulator::new([&pa, &pb], cfg);
        sim2.restore(&snap, &mut cset2);
        let warm = sim2.run(&mut NoFaults, &mut cset2, None, BUDGET);
        assert_eq!(warm.stop, SimStop::Halted);
        assert_eq!(warm.cycles, cold.cycles);
        assert_eq!(warm.outputs, cold.outputs);
        assert_eq!(warm.final_contents, cold.final_contents);
    }

    #[test]
    fn golden_trace_divergence_is_clean_on_identical_rerun() {
        let (pa, pb) = (fib_program(8), store_program());
        let cfg = SimConfig::default();
        let mut cset = checkers(&cfg);
        let mut sim = SmtSimulator::new([&pa, &pb], cfg);
        let golden = sim.run(&mut NoFaults, &mut cset, None, BUDGET);
        let mut cset2 = checkers(&cfg);
        let mut sim2 = SmtSimulator::new([&pa, &pb], cfg);
        let res = sim2.run(&mut NoFaults, &mut cset2, Some(&golden.trace), BUDGET);
        assert!(!res.divergence.any());
    }
}
