//! Run results.

use crate::stats::SimStats;
use crate::trace::{CommitTrace, Divergence};
use idld_rrs::{ContentSnapshot, RrsAssert};
use std::fmt;

/// An architecturally fatal event delivered at commit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CrashCause {
    /// An out-of-bounds data memory access.
    MemFault {
        /// Faulting byte address.
        addr: u64,
        /// Access width in bytes.
        width: usize,
    },
    /// Control flow reached an invalid instruction index.
    InvalidPc(usize),
}

impl fmt::Display for CrashCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrashCause::MemFault { addr, width } => {
                write!(f, "{width}-byte memory fault at {addr:#x}")
            }
            CrashCause::InvalidPc(pc) => write!(f, "invalid pc {pc}"),
        }
    }
}

/// Why a simulated run stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimStop {
    /// The program committed `Halt`.
    Halted,
    /// An architectural fault was delivered at commit (paper class
    /// **Crash**).
    Crash(CrashCause),
    /// The hardware model hit an unserviceable internal condition (paper
    /// class **Assert**).
    Assert(RrsAssert),
    /// The cycle budget was exhausted (paper class **Timeout** when the
    /// budget is 2.5× the golden runtime).
    CycleLimit,
}

impl fmt::Display for SimStop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimStop::Halted => f.write_str("halted"),
            SimStop::Crash(c) => write!(f, "crash: {c}"),
            SimStop::Assert(a) => write!(f, "assert: {a}"),
            SimStop::CycleLimit => f.write_str("cycle limit"),
        }
    }
}

/// The complete outcome of one simulated run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RunResult {
    /// Why the run stopped.
    pub stop: SimStop,
    /// Total cycles simulated.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// The program's output stream.
    pub output: Vec<u64>,
    /// The recorded commit trace — populated only when requested (golden
    /// runs); empty otherwise.
    pub trace: CommitTrace,
    /// First divergences from the golden trace — populated only when a
    /// golden trace was supplied.
    pub divergence: Divergence,
    /// Census of PdstID locations at the end of the run (the persistence
    /// analysis input, paper Figure 4).
    pub final_contents: ContentSnapshot,
    /// Microarchitectural statistics of the run.
    pub stats: SimStats,
}

impl RunResult {
    /// True if the run terminated normally with output identical to
    /// `golden_output`.
    pub fn output_matches(&self, golden_output: &[u64]) -> bool {
        self.stop == SimStop::Halted && self.output == golden_output
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stop_display() {
        assert_eq!(SimStop::Halted.to_string(), "halted");
        assert_eq!(
            SimStop::Crash(CrashCause::InvalidPc(7)).to_string(),
            "crash: invalid pc 7"
        );
        assert_eq!(
            SimStop::Assert(RrsAssert::FlOverflow).to_string(),
            "assert: free list overflow"
        );
        assert!(SimStop::Crash(CrashCause::MemFault { addr: 16, width: 8 })
            .to_string()
            .contains("0x10"));
    }
}
