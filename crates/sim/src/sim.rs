//! The out-of-order core simulator.

use crate::config::SimConfig;
use crate::predictor::Predictor;
use crate::result::{CrashCause, RunResult, SimStop};
use crate::stats::SimStats;
use crate::trace::{CommitTrace, Divergence, TraceMonitor};
use idld_core::CheckerSet;
use idld_isa::reg::NUM_ARCH_REGS;
use idld_isa::{Emulator, Inst, Memory, Program};
use idld_mdp::{StoreSets, StoreTag};
use idld_obs::{Consume, NullRecorder, ObsEvent, Recorder, RecorderState};
use idld_rrs::{FaultHook, Idiom, PhysReg, RenameRequest, Rrs};
use std::collections::VecDeque;

/// True for the canonical register-move encoding (`addi rd, rs, 0`),
/// eligible for move elimination when the RRS enables it.
fn is_register_move(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::AluI {
            op: idld_isa::AluOp::Add,
            imm: 0,
            ..
        }
    )
}

/// Recognizes the 0/1 idioms eliminated when the RRS enables idiom
/// elimination: constant loads of 0/1 and the classic zeroing idioms
/// `xor rd, rs, rs` / `sub rd, rs, rs`.
fn idiom_of(inst: &Inst) -> Option<Idiom> {
    use idld_isa::AluOp;
    match *inst {
        Inst::Li { imm: 0, .. } => Some(Idiom::Zero),
        Inst::Li { imm: 1, .. } => Some(Idiom::One),
        Inst::Alu {
            op: AluOp::Xor | AluOp::Sub,
            rs1,
            rs2,
            ..
        } if rs1 == rs2 => Some(Idiom::Zero),
        _ => None,
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    /// Dispatched, waiting in the reservation station.
    Waiting,
    /// Issued; completes at the stored cycle.
    Executing { done: u64 },
    /// Executed; eligible for in-order commit.
    Done,
}

/// What a completing load gets back from the memory system.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum LoadOutcome {
    /// The loaded value, plus the forwarding store's seq if one supplied it.
    Value(u64, Option<u64>),
    /// A resolved older store partially overlaps: the load must re-issue
    /// after that store commits.
    Replay,
    /// The access faults.
    Fault(CrashCause),
}

#[derive(Clone, PartialEq, Eq, Debug)]
struct Entry {
    seq: u64,
    pc: usize,
    inst: Inst,
    srcs: [Option<PhysReg>; 2],
    new_pdst: Option<PhysReg>,
    pred_next: usize,
    /// Global branch history checkpointed at fetch (before this
    /// instruction's own prediction shifted it).
    bp_hist: u32,
    /// Destination value, output value, or store data.
    result: u64,
    /// Memory address once computed (loads and stores).
    addr: Option<u64>,
    fault: Option<CrashCause>,
    mispredict_to: Option<usize>,
    /// Loads under memory-dependence speculation: the store (by seq) the
    /// predictor says to wait behind.
    wait_for_store: Option<u64>,
    /// Loads: the store (by seq) whose data was forwarded, for violation
    /// shadowing checks.
    forwarded_from: Option<u64>,
}

/// Control-flow class of an instruction, pre-classified at decode so
/// next-pc prediction switches on a small discriminant instead of
/// re-matching the full [`Inst`] on every fetch.
#[derive(Clone, Copy, Debug)]
enum FetchCtrl {
    /// Conditional branch with its taken-path target.
    Br { target: usize },
    /// Direct jump: the next pc is always `target`.
    Jal { target: usize },
    /// Indirect jump: the next pc comes from the BTB.
    Jalr,
    /// Halt: fetch stops behind it.
    Halt,
    /// Everything else falls through to `pc + 1`.
    Fall,
}

/// One pre-decoded instruction: everything the frontend used to derive
/// from an [`Inst`] per fetch — control class, rename request, kind —
/// computed once per program in [`Simulator::new`]. Derived state:
/// immutable for the simulator's lifetime, never part of snapshots.
#[derive(Clone, Copy, Debug)]
struct FetchDecode {
    inst: Inst,
    ctrl: FetchCtrl,
    req: RenameRequest,
    kind: idld_isa::InstKind,
    /// `Halt`/`Nop`: retires without ever executing.
    no_exec: bool,
}

impl FetchDecode {
    fn new(inst: Inst) -> Self {
        FetchDecode {
            inst,
            ctrl: match inst {
                Inst::Br { target, .. } => FetchCtrl::Br { target },
                Inst::Jal { target, .. } => FetchCtrl::Jal { target },
                Inst::Jalr { .. } => FetchCtrl::Jalr,
                Inst::Halt => FetchCtrl::Halt,
                _ => FetchCtrl::Fall,
            },
            req: RenameRequest {
                ldst: inst.dest().map(|r| r.index()),
                srcs: [
                    inst.sources()[0].map(|r| r.index()),
                    inst.sources()[1].map(|r| r.index()),
                ],
                is_move: is_register_move(&inst),
                idiom: idiom_of(&inst),
            },
            kind: inst.kind(),
            no_exec: matches!(inst, Inst::Halt | Inst::Nop),
        }
    }
}

/// A cycle-accurate out-of-order core bound to one program.
///
/// Create one per run; drive it with [`Simulator::run`]. See the crate docs
/// for the pipeline model.
#[derive(Debug)]
pub struct Simulator<'p> {
    prog: &'p Program,
    /// Per-pc pre-decode of `prog` (see [`FetchDecode`]): the fetch/rename
    /// path indexes this table instead of re-deriving operands, idioms and
    /// branch targets from the raw instruction every fetch.
    decode: Vec<FetchDecode>,
    cfg: SimConfig,
    rrs: Rrs,
    mem: Memory,
    prf: Vec<u64>,
    ready: Vec<bool>,
    window: VecDeque<Entry>,
    /// Per-entry pipeline status, kept in lockstep with `window` (same
    /// indices, same push/pop discipline). Split out of [`Entry`] so the
    /// per-cycle writeback/issue scans walk a compact lane (16 B/entry)
    /// instead of dragging the full ~150 B entries through the cache.
    stat: VecDeque<Status>,
    /// Sequence numbers of the entries currently [`Status::Waiting`], in
    /// ascending (= window) order, so the issue stage visits exactly the
    /// wakeup candidates instead of scanning the whole window. Derived
    /// state: rebuilt from `stat` on restore, not part of snapshots.
    waiting_seqs: Vec<u64>,
    /// Per-entry copy of the renamed source operands, kept in lockstep
    /// with `window`. The issue stage's readiness test reads 8 B per
    /// candidate from this lane instead of dragging each ~150 B
    /// [`Entry`] through the cache.
    src_lane: VecDeque<[Option<PhysReg>; 2]>,
    /// `(done_cycle, seq)` of every entry currently [`Status::Executing`]
    /// (unordered), so the per-cycle writeback scan touches only in-flight
    /// instructions instead of the whole window. Derived state: rebuilt
    /// from `stat` on restore, not part of snapshots.
    exec_done: Vec<(u64, u64)>,
    /// Per-cycle scratch: seqs completing this cycle, sorted into window
    /// order before the completions run (completion order is observable).
    due_buf: Vec<u64>,
    /// Sequence numbers of the stores currently in the window, in program
    /// order. Memory disambiguation ([`Simulator::load_may_issue`]) and
    /// store-to-load forwarding walk older stores youngest-first on every
    /// load issue attempt; this index lets them touch only the stores
    /// instead of scanning the whole window.
    store_seqs: VecDeque<u64>,
    predictor: Predictor,
    fetch_pc: usize,
    fetch_enabled: bool,
    fetch_fault: Option<usize>,
    halt_in_flight: bool,
    pending_flush: Option<(u64, usize)>,
    redirect_after_recovery: Option<usize>,
    cycle: u64,
    output: Vec<u64>,
    committed: u64,
    stats: SimStats,
    store_sets: StoreSets,
    /// Per-cycle scratch: the fetch group `(pc, decode, pred_next, bp_hist)`.
    /// Reused across cycles to keep the fetch/rename path allocation-free;
    /// always empty between cycles, so snapshots need not carry it.
    fetch_buf: Vec<(usize, FetchDecode, usize, u32)>,
    /// Per-cycle scratch: rename requests derived from the fetch group.
    req_buf: Vec<RenameRequest>,
    /// Per-cycle scratch: rename outputs.
    out_buf: Vec<idld_rrs::RenameOut>,
}

impl<'p> Simulator<'p> {
    /// Creates a simulator at power-on state for `program`.
    pub fn new(program: &'p Program, cfg: SimConfig) -> Self {
        let rrs = Rrs::new(cfg.rrs);
        // Architectural registers start at zero; the initial RAT maps
        // logical i to physical i, so the whole PRF starts zeroed and ready.
        let mut prf = vec![0u64; cfg.rrs.num_phys];
        let ready = vec![true; cfg.rrs.num_phys];
        if let Some((zero, one)) = cfg.rrs.pinned() {
            prf[zero.index()] = 0;
            prf[one.index()] = 1;
        }
        Simulator {
            prog: program,
            decode: program
                .insts
                .iter()
                .copied()
                .map(FetchDecode::new)
                .collect(),
            mem: program.build_memory(),
            rrs,
            prf,
            ready,
            window: VecDeque::with_capacity(cfg.rrs.rob_entries),
            stat: VecDeque::with_capacity(cfg.rrs.rob_entries),
            waiting_seqs: Vec::new(),
            src_lane: VecDeque::with_capacity(cfg.rrs.rob_entries),
            exec_done: Vec::new(),
            due_buf: Vec::new(),
            store_seqs: VecDeque::new(),
            predictor: Predictor::new(cfg.bp_log2, cfg.btb_log2),
            fetch_pc: 0,
            fetch_enabled: true,
            fetch_fault: None,
            halt_in_flight: false,
            pending_flush: None,
            redirect_after_recovery: None,
            cycle: 0,
            output: Vec::new(),
            committed: 0,
            stats: SimStats::default(),
            store_sets: StoreSets::new(512, 64),
            fetch_buf: Vec::with_capacity(cfg.rrs.width),
            req_buf: Vec::with_capacity(cfg.rrs.width),
            out_buf: Vec::with_capacity(cfg.rrs.width),
            cfg,
        }
    }

    /// Window index of the in-flight instruction with sequence `seq`.
    #[inline]
    fn window_index(&self, seq: u64) -> Option<usize> {
        let front = self.window.front()?.seq;
        if seq < front {
            return None;
        }
        let idx = (seq - front) as usize;
        (idx < self.window.len()).then_some(idx)
    }

    /// Microarchitectural statistics collected so far.
    #[inline]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Current cycle.
    #[inline]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The register renaming subsystem (for inspection in tests/tools).
    #[inline]
    pub fn rrs(&self) -> &Rrs {
        &self.rrs
    }

    /// The program this simulator executes. The frontend fetches from the
    /// pre-decoded per-pc table derived from it at construction, so the
    /// program must not change for the simulator's lifetime (the `&'p`
    /// borrow guarantees it).
    #[inline]
    pub fn program(&self) -> &'p Program {
        self.prog
    }

    /// The committed (architectural) value of logical register `arch`,
    /// read through the retirement RAT. Meaningful once the pipeline has
    /// drained (after [`Simulator::run`] returns); differential oracles
    /// compare this against the golden emulator's register file.
    #[inline]
    pub fn arch_reg(&self, arch: usize) -> u64 {
        self.prf[self.rrs.rrat_lookup(arch).index()]
    }

    /// The data memory (stores are applied at commit, so after a run this
    /// is the architectural memory state).
    #[inline]
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Runs the program to completion (halt/crash/assert) or `max_cycles`.
    ///
    /// `hook` is consulted for every RRS control signal (use
    /// [`idld_rrs::NoFaults`] for a bug-free run); `checkers` observe the
    /// RRS event stream. When `golden` is `None` the full commit trace is
    /// recorded in the result (this *is* a golden run); when `Some`, commits
    /// are compared on the fly and only the first divergences are recorded.
    pub fn run(
        &mut self,
        hook: &mut impl FaultHook,
        checkers: &mut CheckerSet,
        golden: Option<&CommitTrace>,
        max_cycles: u64,
    ) -> RunResult {
        self.run_with_interrupt(hook, checkers, golden, max_cycles, None)
    }

    /// [`Simulator::run`] with an event recorder attached: every pipeline
    /// event of the run is delivered to `recorder`. With
    /// [`idld_obs::NullRecorder`] this is exactly [`Simulator::run`] (the
    /// probes compile to nothing); with [`idld_obs::RingRecorder`] the run
    /// produces a full structured trace.
    pub fn run_observed(
        &mut self,
        hook: &mut impl FaultHook,
        checkers: &mut CheckerSet,
        golden: Option<&CommitTrace>,
        max_cycles: u64,
        recorder: &mut impl Recorder,
    ) -> RunResult {
        let mut seg = self.begin_run(golden, max_cycles);
        let stop = seg.run_to_end_observed(self, hook, checkers, None, recorder);
        seg.finish(self, stop, checkers)
    }

    /// [`Simulator::run`] with a cooperative interrupt: when `interrupt`
    /// becomes true the run stops with [`SimStop::CycleLimit`] at the next
    /// budget check. The flag is polled once every 1024 cycles alongside
    /// the existing budget comparison, so the cost on the hot loop is nil
    /// and the response latency is ~1 k simulated cycles.
    pub fn run_with_interrupt(
        &mut self,
        hook: &mut impl FaultHook,
        checkers: &mut CheckerSet,
        golden: Option<&CommitTrace>,
        max_cycles: u64,
        interrupt: Option<&std::sync::atomic::AtomicBool>,
    ) -> RunResult {
        let mut seg = self.begin_run(golden, max_cycles);
        let stop = seg.run_to_end(self, hook, checkers, interrupt);
        seg.finish(self, stop, checkers)
    }

    /// Starts a [`SegmentedRun`]: the same run the one-shot entry points
    /// perform, but resumable in slices so the driver can pause at chosen
    /// cycles (to take [`SimSnapshot`]s) and continue.
    ///
    /// When this simulator was restored from a snapshot mid-trace, the
    /// divergence monitor joins the golden comparison at the restored
    /// commit position — the prefix was produced by the golden run itself.
    pub fn begin_run<'g>(
        &self,
        golden: Option<&'g CommitTrace>,
        max_cycles: u64,
    ) -> SegmentedRun<'g> {
        SegmentedRun {
            trace: CommitTrace::new(),
            monitor: golden.map(|g| TraceMonitor::new_at(g, self.committed as usize)),
            record: golden.is_none(),
            max_cycles,
        }
    }

    /// Packages the final [`RunResult`] once a segment returned a stop.
    fn finish_run(
        &mut self,
        stop: SimStop,
        trace: CommitTrace,
        monitor: Option<TraceMonitor<'_>>,
        checkers: &mut CheckerSet,
    ) -> RunResult {
        if stop == SimStop::Halted {
            // The pipeline is architecturally drained: give the empty-point
            // checkers (BV, counter) their final check.
            checkers.end_cycle(self.cycle);
            checkers.on_pipeline_empty(self.cycle);
        }
        // For abnormal terminations a short trace is still a divergence:
        // the golden run committed more (it halted), so `finish` marks an
        // order divergence at the stop cycle.
        let divergence = match monitor {
            Some(mut m) => m.finish(self.cycle),
            None => Divergence::default(),
        };
        self.stats.cycles = self.cycle;
        self.stats.committed = self.committed;
        RunResult {
            stop,
            cycles: self.cycle,
            committed: self.committed,
            // The simulator is single-run (see the struct docs), so the
            // output stream moves into the result instead of cloning.
            output: std::mem::take(&mut self.output),
            trace,
            divergence,
            final_contents: self.rrs.contents(),
            stats: self.stats,
        }
    }

    /// Captures the complete mutable state of this simulator plus the
    /// attached `checkers`, such that [`Simulator::restore`] continues
    /// bit-for-bit identically to never having stopped.
    ///
    /// Must be taken at a cycle boundary (between [`SegmentedRun::step_until`]
    /// segments, or before a run starts) — mid-cycle there is transient
    /// state outside the captured set.
    pub fn snapshot(&self, checkers: &CheckerSet) -> SimSnapshot {
        self.snapshot_observed(checkers, &NullRecorder)
    }

    /// [`Simulator::snapshot`] that additionally captures the attached
    /// recorder's state, so a run forked from the snapshot resumes the
    /// event stream mid-trace and emits bytes identical to a cold run.
    pub fn snapshot_observed(
        &self,
        checkers: &CheckerSet,
        recorder: &impl Recorder,
    ) -> SimSnapshot {
        self.snapshot_with(checkers, recorder, true)
    }

    /// [`Simulator::snapshot`] without the memory image — a *lean*
    /// snapshot that never pays the memory clone (the dominant cost of a
    /// full capture). Restorable only through
    /// [`Simulator::restore_from_arch`], which reconstructs memory from
    /// the in-order emulator and runs the bit-exactness gate.
    pub fn snapshot_lean(&self, checkers: &CheckerSet) -> SimSnapshot {
        self.snapshot_with(checkers, &NullRecorder, false)
    }

    fn snapshot_with(
        &self,
        checkers: &CheckerSet,
        recorder: &impl Recorder,
        with_mem: bool,
    ) -> SimSnapshot {
        SimSnapshot {
            recorder: recorder.state(),
            rrs: self.rrs.clone(),
            mem: with_mem.then(|| self.mem.clone()),
            prf: self.prf.clone(),
            ready: self.ready.clone(),
            window: self.window.clone(),
            stat: self.stat.clone(),
            predictor: self.predictor.clone(),
            fetch_pc: self.fetch_pc,
            fetch_enabled: self.fetch_enabled,
            fetch_fault: self.fetch_fault,
            halt_in_flight: self.halt_in_flight,
            pending_flush: self.pending_flush,
            redirect_after_recovery: self.redirect_after_recovery,
            cycle: self.cycle,
            output: self.output.clone(),
            committed: self.committed,
            stats: self.stats,
            store_sets: self.store_sets.clone(),
            checkers: checkers.clone(),
        }
    }

    /// Restores state captured by [`Simulator::snapshot`], replacing
    /// `checkers` with the captured checker state. The simulator must have
    /// been created for the same program and configuration the snapshot
    /// was taken under.
    pub fn restore(&mut self, snap: &SimSnapshot, checkers: &mut CheckerSet) {
        self.restore_observed(snap, checkers, &mut NullRecorder)
    }

    /// Restores a *lean* snapshot (one whose memory was dropped by
    /// [`SimSnapshot::discard_mem`]), reconstructing data memory from an
    /// in-order emulator advanced to exactly the snapshot's committed
    /// instruction count — the fast-forward engine hand-off.
    ///
    /// Stores are applied to memory at commit, so the emulator's memory
    /// after `snap.committed()` architectural steps *is* the simulator's
    /// memory at the snapshot cycle. Before seeding anything, the
    /// bit-exactness gate ([`SimSnapshot::verify_arch`]) cross-checks the
    /// emulator's registers, output and pc against the snapshot's committed
    /// view; any disagreement means the two engines diverged
    /// architecturally and the restore is refused. Also accepts full
    /// snapshots (the captured memory then wins, but the gate still runs).
    pub fn restore_from_arch(
        &mut self,
        snap: &SimSnapshot,
        emu: &Emulator,
        checkers: &mut CheckerSet,
    ) -> Result<(), FfDivergence> {
        self.restore_from_arch_observed(snap, emu, checkers, &mut NullRecorder)
    }

    /// [`Simulator::restore_from_arch`] that additionally restores
    /// `recorder`, so fast-forwarded observed runs emit byte-identical
    /// traces.
    pub fn restore_from_arch_observed(
        &mut self,
        snap: &SimSnapshot,
        emu: &Emulator,
        checkers: &mut CheckerSet,
        recorder: &mut impl Recorder,
    ) -> Result<(), FfDivergence> {
        snap.verify_arch(emu)?;
        recorder.restore_state(&snap.recorder);
        match &snap.mem {
            Some(m) => self.mem.clone_from(m),
            None => self.mem.clone_from(emu.mem()),
        }
        self.restore_except_mem(snap, checkers);
        Ok(())
    }

    /// [`Simulator::restore`] that additionally restores `recorder` to the
    /// state captured by [`Simulator::snapshot_observed`].
    pub fn restore_observed(
        &mut self,
        snap: &SimSnapshot,
        checkers: &mut CheckerSet,
        recorder: &mut impl Recorder,
    ) {
        let mem = snap
            .mem
            .as_ref()
            .expect("lean snapshot (memory stripped) requires restore_from_arch");
        recorder.restore_state(&snap.recorder);
        self.mem.clone_from(mem);
        self.restore_except_mem(snap, checkers);
    }

    /// The memory-independent tail of [`Simulator::restore_observed`],
    /// shared with [`Simulator::restore_from_arch`].
    fn restore_except_mem(&mut self, snap: &SimSnapshot, checkers: &mut CheckerSet) {
        self.rrs = snap.rrs.clone();
        self.prf.clone_from(&snap.prf);
        self.ready.clone_from(&snap.ready);
        self.window.clone_from(&snap.window);
        self.stat.clone_from(&snap.stat);
        self.waiting_seqs.clear();
        self.waiting_seqs.extend(
            snap.stat
                .iter()
                .zip(&snap.window)
                .filter(|(s, _)| matches!(s, Status::Waiting))
                .map(|(_, e)| e.seq),
        );
        self.src_lane.clear();
        self.src_lane.extend(snap.window.iter().map(|e| e.srcs));
        self.exec_done.clear();
        self.exec_done.extend(
            snap.stat
                .iter()
                .zip(&snap.window)
                .filter_map(|(s, e)| match s {
                    Status::Executing { done } => Some((*done, e.seq)),
                    _ => None,
                }),
        );
        self.store_seqs.clear();
        self.store_seqs.extend(
            snap.window
                .iter()
                .filter(|e| matches!(e.inst.kind(), idld_isa::InstKind::Store))
                .map(|e| e.seq),
        );
        self.predictor.clone_from(&snap.predictor);
        self.fetch_pc = snap.fetch_pc;
        self.fetch_enabled = snap.fetch_enabled;
        self.fetch_fault = snap.fetch_fault;
        self.halt_in_flight = snap.halt_in_flight;
        self.pending_flush = snap.pending_flush;
        self.redirect_after_recovery = snap.redirect_after_recovery;
        self.cycle = snap.cycle;
        self.output.clone_from(&snap.output);
        self.committed = snap.committed;
        self.stats = snap.stats;
        self.store_sets.clone_from(&snap.store_sets);
        *checkers = snap.checkers.clone();
    }

    #[allow(clippy::too_many_arguments)]
    fn main_loop<R: Recorder>(
        &mut self,
        hook: &mut impl FaultHook,
        checkers: &mut CheckerSet,
        trace: &mut CommitTrace,
        monitor: &mut Option<TraceMonitor<'_>>,
        record: bool,
        max_cycles: u64,
        interrupt: Option<&std::sync::atomic::AtomicBool>,
        pause_at: Option<u64>,
        recorder: &mut R,
    ) -> Option<SimStop> {
        // Stall fast-forward: count consecutive cycles in which provably
        // nothing changed. Once two such cycles pass (letting checker
        // detection latches settle on the frozen state) and the end-state
        // analysis below holds, every future cycle is identical except
        // for the counter, so the loop jumps to the next external event.
        let mut idle_streak: u32 = 0;
        loop {
            if self.cycle >= max_cycles {
                return Some(SimStop::CycleLimit);
            }
            if pause_at.is_some_and(|p| self.cycle >= p) {
                return None;
            }
            if self.cycle & 0x3ff == 0 {
                if let Some(flag) = interrupt {
                    if flag.load(std::sync::atomic::Ordering::Relaxed) {
                        return Some(SimStop::CycleLimit);
                    }
                }
            }
            hook.begin_cycle(self.cycle);
            // At-rest storage upsets (§V.D class) land silently.
            self.rrs.apply_at_rest(hook);
            // --- Recovery (freezes the rest of the pipeline) -------------
            if self.rrs.recovery_active() {
                idle_streak = 0;
                self.stats.recovery_cycles += 1;
                match self.rrs.step_recovery(hook, checkers) {
                    Ok(true) => {
                        recorder.record(self.cycle, ObsEvent::RecoveryEnd);
                        if let Some(target) = self.redirect_after_recovery.take() {
                            self.fetch_pc = target;
                        }
                        self.fetch_fault = None;
                        self.halt_in_flight =
                            self.window.iter().any(|e| matches!(e.inst, Inst::Halt));
                        self.fetch_enabled = !self.halt_in_flight;
                    }
                    Ok(false) => {}
                    Err(a) => return Some(SimStop::Assert(a)),
                }
                self.end_cycle(hook, checkers, recorder);
                continue;
            }
            if let Some((fseq, target)) = self.pending_flush.take() {
                idle_streak = 0;
                self.stats.flushes += 1;
                recorder.record(
                    self.cycle,
                    ObsEvent::Flush {
                        seq: fseq,
                        target: target as u32,
                    },
                );
                self.squash_younger(fseq);
                self.repair_branch_history(fseq);
                self.rrs.start_recovery(fseq, hook, checkers);
                recorder.record(self.cycle, ObsEvent::RecoveryStart);
                self.redirect_after_recovery = Some(target);
                self.fetch_enabled = false;
                self.end_cycle(hook, checkers, recorder);
                continue;
            }

            // Observable-progress pulse: any change to these between here
            // and end of cycle means the machine moved.
            let pulse = (
                self.committed,
                self.window.len(),
                self.fetch_pc,
                self.fetch_enabled,
                self.stats.issued,
                self.stats.renamed,
                self.stats.loads,
                self.stats.load_replays,
                self.stats.branches,
            );
            let fs_before = self.stats.frontend_stalls;

            // --- Commit ---------------------------------------------------
            let mut commits = 0;
            while commits < self.cfg.width() {
                if self.stat.front() != Some(&Status::Done) {
                    break;
                }
                let front = self.window.front().expect("stat mirrors window");
                if let Some(f) = front.fault {
                    return Some(SimStop::Crash(f));
                }
                let (seq, pc, inst, result, addr) =
                    (front.seq, front.pc, front.inst, front.result, front.addr);
                if matches!(inst, Inst::Halt) {
                    self.observe_commit(pc, seq, trace, monitor, record, recorder);
                    self.committed += 1;
                    return Some(SimStop::Halted);
                }
                match inst {
                    Inst::St { .. } | Inst::Stw { .. } | Inst::Stb { .. } => {
                        let width = inst.mem_width().expect("store width");
                        let a = addr.expect("store executed");
                        if let Err(e) = self.mem.store(a, width, result) {
                            return Some(SimStop::Crash(CrashCause::MemFault {
                                addr: e.addr,
                                width: e.width,
                            }));
                        }
                        self.stats.stores += 1;
                        debug_assert_eq!(self.store_seqs.front(), Some(&seq));
                        self.store_seqs.pop_front();
                    }
                    Inst::Out { .. } => self.output.push(result),
                    _ => {}
                }
                if let Err(a) = self.rrs.commit_head(hook, checkers) {
                    return Some(SimStop::Assert(a));
                }
                self.observe_commit(pc, seq, trace, monitor, record, recorder);
                self.committed += 1;
                self.window.pop_front();
                self.stat.pop_front();
                self.src_lane.pop_front();
                commits += 1;
            }

            // --- Writeback / complete -------------------------------------
            let mut completions = 0u32;
            if !self.exec_done.is_empty() {
                let mut due = std::mem::take(&mut self.due_buf);
                let mut k = 0;
                while k < self.exec_done.len() {
                    let (done, seq) = self.exec_done[k];
                    if done <= self.cycle {
                        due.push(seq);
                        self.exec_done.swap_remove(k);
                    } else {
                        k += 1;
                    }
                }
                if !due.is_empty() {
                    // Window order (the order the old full-window scan
                    // produced): completion order is observable through the
                    // event trace, forwarding and predictor training.
                    due.sort_unstable();
                    let front_seq = self.window.front().expect("in-flight entries exist").seq;
                    for &seq in &due {
                        self.complete((seq - front_seq) as usize, recorder);
                        completions += 1;
                    }
                    due.clear();
                }
                self.due_buf = due;
            }

            // --- Issue ----------------------------------------------------
            self.issue(recorder);

            // --- Fetch + rename -------------------------------------------
            if self.fetch_enabled {
                if let Err(a) = self.fetch_rename(hook, checkers, recorder) {
                    return Some(SimStop::Assert(a));
                }
            }

            // --- End of cycle ---------------------------------------------
            if self.window.is_empty() {
                if let Some(pc) = self.fetch_fault {
                    return Some(SimStop::Crash(CrashCause::InvalidPc(pc)));
                }
            }

            // Dead-cycle analysis. If nothing committed, completed, issued
            // or renamed this cycle, then the end-of-cycle state proves the
            // machine can never move again: nothing is mid-execution (so no
            // completion is scheduled), the ROB head is not ready (commit
            // is a function of that frozen head), issue and fetch/rename
            // are pure functions of state they just failed on (a stalled
            // fetch restores `fetch_pc` and the speculative branch history
            // exactly), and the hook can only act on operations that no
            // longer happen. Memory, RRS, PRF and predictor state only
            // change through those channels, so every later cycle replays
            // this one verbatim.
            let frozen = self.cfg.stall_fast_forward
                && completions == 0
                && pulse
                    == (
                        self.committed,
                        self.window.len(),
                        self.fetch_pc,
                        self.fetch_enabled,
                        self.stats.issued,
                        self.stats.renamed,
                        self.stats.loads,
                        self.stats.load_replays,
                        self.stats.branches,
                    )
                && self.pending_flush.is_none()
                && !self.rrs.recovery_active()
                && hook.quiescent()
                && self.stat.front().is_none_or(|s| *s != Status::Done)
                && self.exec_done.is_empty();
            idle_streak = if frozen { idle_streak + 1 } else { 0 };

            self.end_cycle(hook, checkers, recorder);

            if idle_streak >= 2 {
                // The remaining cycles tick only the counters below and
                // call checkers whose detection latches settled on this
                // exact state during the streak; jump to the next event.
                let target = pause_at.map_or(max_cycles, |p| p.min(max_cycles));
                if let Some(skip) = target.checked_sub(self.cycle) {
                    self.stats.occupancy_sum += skip * self.window.len() as u64;
                    self.stats.frontend_stalls += skip * (self.stats.frontend_stalls - fs_before);
                    self.cycle = target;
                }
            }
        }
    }

    /// Routes one commit to every observer of the event stream: the
    /// recorded trace (golden runs), the divergence monitor (injected
    /// runs), and the recorder. All three consume the same [`ObsEvent`] —
    /// one source of truth for what committed when.
    fn observe_commit<R: Recorder>(
        &self,
        pc: usize,
        seq: u64,
        trace: &mut CommitTrace,
        monitor: &mut Option<TraceMonitor<'_>>,
        record: bool,
        recorder: &mut R,
    ) {
        let ev = ObsEvent::Commit { pc: pc as u32, seq };
        if record {
            trace.consume(self.cycle, &ev);
        }
        if let Some(m) = monitor {
            m.consume(self.cycle, &ev);
        }
        recorder.record(self.cycle, ev);
    }

    fn end_cycle<R: Recorder>(
        &mut self,
        hook: &impl FaultHook,
        checkers: &mut CheckerSet,
        recorder: &mut R,
    ) {
        self.stats.occupancy_sum += self.window.len() as u64;
        checkers.end_cycle(self.cycle);
        if self.window.is_empty() && !self.rrs.recovery_active() {
            checkers.on_pipeline_empty(self.cycle);
        }
        if recorder.enabled() {
            recorder.record(
                self.cycle,
                ObsEvent::Occupancy {
                    window: self.window.len() as u16,
                    fl_free: self.rrs.free_regs() as u16,
                    rob: self.rrs.rob_len() as u16,
                    rht: self.rrs.rht_len() as u16,
                },
            );
            if let Some(code) = checkers.xor_code() {
                // The recorder delta-encodes this: only changes survive.
                recorder.record(self.cycle, ObsEvent::CheckerCode { code });
            }
            if let Some((_, site)) = hook.activation() {
                // Recorded once per run by the recorder's dedup.
                recorder.record(self.cycle, ObsEvent::FaultInjected { site });
            }
            checkers.for_each_detection(|name, d| {
                // Likewise deduplicated per checker by the recorder.
                recorder.record(
                    self.cycle,
                    ObsEvent::Detection {
                        checker: name,
                        kind: d.kind.label(),
                        at: d.cycle,
                    },
                );
            });
        }
        self.cycle += 1;
    }

    /// Restores the speculative global history after a flush: the offending
    /// control instruction's checkpointed history, shifted by its actual
    /// outcome for conditional branches.
    fn repair_branch_history(&mut self, fseq: u64) {
        let Some(off) = self.window.back() else { return };
        debug_assert_eq!(off.seq, fseq);
        match off.inst {
            Inst::Br { target, .. } => {
                // Resolved-mispredicted branches carry their actual target;
                // correctly-predicted or still-unresolved ones keep their
                // prediction (memory-violation flushes can land here).
                let actual = off.mispredict_to.unwrap_or(off.pred_next);
                let taken = actual == target;
                self.predictor.repair_history(off.bp_hist, taken);
            }
            _ => self.predictor.set_history(off.bp_hist),
        }
    }

    fn squash_younger(&mut self, fseq: u64) {
        while let Some(back) = self.window.back() {
            if back.seq > fseq {
                self.window.pop_back();
                self.stat.pop_back().expect("stat mirrors window");
                self.src_lane.pop_back();
            } else {
                break;
            }
        }
        while self.store_seqs.back().is_some_and(|&s| s > fseq) {
            self.store_seqs.pop_back();
        }
        let keep = self.waiting_seqs.partition_point(|&s| s <= fseq);
        self.waiting_seqs.truncate(keep);
        self.exec_done.retain(|&(_, s)| s <= fseq);
        self.halt_in_flight = self.window.iter().any(|e| matches!(e.inst, Inst::Halt));
        self.fetch_fault = None;
    }

    fn latency(&self, inst: &Inst) -> u64 {
        use idld_isa::InstKind::*;
        match inst.kind() {
            Alu | Out => self.cfg.lat_alu,
            MulDiv => self.cfg.lat_muldiv,
            Load => self.cfg.lat_load,
            Store => self.cfg.lat_store,
            Branch | Jump | JumpInd => self.cfg.lat_branch,
            Halt => self.cfg.lat_alu,
        }
    }

    #[inline]
    fn src_val(&self, e: &Entry, idx: usize) -> u64 {
        e.srcs[idx].map(|p| self.prf[p.index()]).unwrap_or(0)
    }

    /// Completes execution of window entry `i`.
    fn complete<R: Recorder>(&mut self, i: usize, recorder: &mut R) {
        let e = &self.window[i];
        let (inst, pc, seq, pred_next) = (e.inst, e.pc, e.seq, e.pred_next);
        let a = self.src_val(e, 0);
        let b = self.src_val(e, 1);
        let mut result = 0u64;
        let mut addr = None;
        let mut fault = None;
        let mut actual_next = pc + 1;
        match inst {
            Inst::Alu { op, .. } => result = op.apply(a, b),
            Inst::AluI { op, imm, .. } => result = op.apply(a, imm as u64),
            Inst::Li { imm, .. } => result = imm as u64,
            Inst::Ld { imm, .. } | Inst::Ldw { imm, .. } | Inst::Ldb { imm, .. } => {
                let width = inst.mem_width().expect("load width");
                let address = a.wrapping_add(imm as u64);
                match self.load_with_forwarding(i, address, width) {
                    LoadOutcome::Replay => {
                        // An older store resolved to a partially overlapping
                        // address while this load was in flight. Exact-match
                        // forwarding cannot supply the merged bytes, so send
                        // the load back to the scheduler: the issue rule
                        // holds it until the store commits its bytes.
                        self.stats.load_replays += 1;
                        self.stat[i] = Status::Waiting;
                        let pos = self.waiting_seqs.partition_point(|&s| s < seq);
                        self.waiting_seqs.insert(pos, seq);
                        return;
                    }
                    LoadOutcome::Value(v, forwarded) => {
                        result = v;
                        if forwarded.is_some() {
                            self.stats.load_forwards += 1;
                        }
                        self.window[i].forwarded_from = forwarded;
                    }
                    LoadOutcome::Fault(c) => {
                        fault = Some(c);
                        result = 0;
                    }
                }
                addr = Some(address);
                self.stats.loads += 1;
            }
            Inst::St { imm, .. } | Inst::Stw { imm, .. } | Inst::Stb { imm, .. } => {
                addr = Some(a.wrapping_add(imm as u64));
                result = b; // store data captured at execute
            }
            Inst::Br { cond, target, .. } => {
                self.stats.branches += 1;
                let taken = cond.eval(a, b);
                actual_next = if taken { target } else { pc + 1 };
                let hist = self.window[i].bp_hist;
                self.predictor.train_dir(pc, hist, taken);
            }
            Inst::Jal { target, .. } => {
                result = (pc + 1) as u64;
                actual_next = target;
            }
            Inst::Jalr { imm, .. } => {
                self.stats.branches += 1;
                result = (pc + 1) as u64;
                let t = a.wrapping_add(imm as u64);
                actual_next = t.min(usize::MAX as u64) as usize;
                self.predictor.train_target(pc, actual_next);
            }
            Inst::Out { .. } => result = a,
            Inst::Halt | Inst::Nop => {}
        }

        let e = &mut self.window[i];
        e.result = result;
        e.addr = addr;
        e.fault = fault;
        self.stat[i] = Status::Done;
        let mispredict = inst.is_control() && actual_next != pred_next;
        recorder.record(self.cycle, ObsEvent::Complete { seq, mispredict });
        if mispredict {
            self.stats.mispredicts += 1;
            e.mispredict_to = Some(actual_next);
            // Keep the oldest flush point; on a seq tie a branch flush wins
            // over a memory-violation flush anchored at the same point (its
            // redirect supersedes the wrong-path load's refetch).
            if self.pending_flush.is_none_or(|(s, _)| seq <= s) {
                self.pending_flush = Some((seq, actual_next));
            }
        }
        if let Some(p) = self.window[i].new_pdst {
            self.prf[p.index()] = result;
            self.ready[p.index()] = true;
        }
        if self.cfg.mem_dep_speculation && matches!(inst.kind(), idld_isa::InstKind::Store) {
            self.resolve_store_and_check_violations(i);
        }
    }

    /// A store's address just resolved: release its LFST entry and flush
    /// any younger load that already executed against an overlapping
    /// address without being shadowed by a newer forwarding store — the
    /// memory-order violation path of the store-sets scheme.
    fn resolve_store_and_check_violations(&mut self, i: usize) {
        let store = &self.window[i];
        let (s_seq, s_pc) = (store.seq, store.pc);
        let s_addr = store.addr.expect("store executed");
        let s_width = store.inst.mem_width().expect("store width");
        self.store_sets
            .resolve_store(s_pc as u64, StoreTag(s_seq), true);

        let mut victim: Option<(u64, usize, usize)> = None; // (seq, pc, idx)
        for j in i + 1..self.window.len() {
            let e = &self.window[j];
            if !matches!(e.inst.kind(), idld_isa::InstKind::Load) {
                continue;
            }
            let executed = !matches!(self.stat[j], Status::Waiting);
            let Some(laddr) = e.addr else { continue };
            if !executed {
                continue;
            }
            let lwidth = e.inst.mem_width().expect("load width");
            let overlap = s_addr < laddr.wrapping_add(lwidth as u64)
                && laddr < s_addr.wrapping_add(s_width as u64);
            if !overlap {
                continue;
            }
            // Shadowed by a forwarding store younger than this one?
            if matches!(e.forwarded_from, Some(f) if f > s_seq) {
                continue;
            }
            if victim.is_none_or(|(vs, _, _)| e.seq < vs) {
                victim = Some((e.seq, e.pc, j));
            }
        }
        if let Some((l_seq, l_pc, _)) = victim {
            self.stats.mem_violations += 1;
            self.store_sets.train_violation(l_pc as u64, s_pc as u64);
            // Flush at the instruction before the load; refetch the load.
            if self.pending_flush.is_none_or(|(s, _)| l_seq - 1 < s) {
                self.pending_flush = Some((l_seq - 1, l_pc));
            }
        }
    }

    /// Loads with exact-match store-to-load forwarding from older in-window
    /// stores, scanning youngest-first so the nearest exact match shadows
    /// anything older.
    ///
    /// The issue rule refuses to *issue* a load past a store already
    /// resolved to a partially overlapping address, but with memory
    /// dependence speculation a store may resolve to one while the load is
    /// in flight (the violation scan cannot see such a load: its address
    /// is recorded only here, at completion). That case returns
    /// [`LoadOutcome::Replay`] instead of stale memory bytes.
    fn load_with_forwarding(&self, i: usize, addr: u64, width: usize) -> LoadOutcome {
        let front_seq = self.window.front().expect("load is in the window").seq;
        let load_seq = front_seq + i as u64;
        for &s in self.store_seqs.iter().rev().skip_while(|&&s| s >= load_seq) {
            let e = &self.window[(s - front_seq) as usize];
            if let Some(saddr) = e.addr {
                let swidth = e.inst.mem_width().expect("store width");
                if saddr == addr && swidth == width {
                    let mask = if width == 8 {
                        u64::MAX
                    } else {
                        (1u64 << (8 * width)) - 1
                    };
                    return LoadOutcome::Value(e.result & mask, Some(e.seq));
                }
                let overlap = saddr < addr.wrapping_add(width as u64)
                    && addr < saddr.wrapping_add(swidth as u64);
                if overlap {
                    return LoadOutcome::Replay;
                }
            }
        }
        match self.mem.load(addr, width) {
            Ok(v) => LoadOutcome::Value(v, None),
            Err(e) => LoadOutcome::Fault(CrashCause::MemFault {
                addr: e.addr,
                width: e.width,
            }),
        }
    }

    /// True if window entry `i` (a load) may issue under conservative
    /// memory disambiguation.
    fn load_may_issue(&self, i: usize) -> bool {
        let load = &self.window[i];
        let laddr = self.src_val(load, 0).wrapping_add(match load.inst {
            Inst::Ld { imm, .. } | Inst::Ldw { imm, .. } | Inst::Ldb { imm, .. } => imm as u64,
            _ => 0,
        });
        let lwidth = load.inst.mem_width().expect("load width");
        let speculate = self.cfg.mem_dep_speculation;
        // Predicted dependence (store sets): wait until that specific
        // store's address resolves (or it is squashed / retired).
        if speculate {
            if let Some(dep_seq) = load.wait_for_store {
                if let Some(j) = self.window_index(dep_seq) {
                    if j < i && self.window[j].addr.is_none() {
                        return false;
                    }
                }
            }
        }
        let front_seq = self.window.front().expect("load is in the window").seq;
        let load_seq = front_seq + i as u64;
        for &s in self.store_seqs.iter().rev().skip_while(|&&s| s >= load_seq) {
            let e = &self.window[(s - front_seq) as usize];
            match e.addr {
                // Conservative mode blocks on any unresolved older store;
                // speculative mode sails past (the violation scan at the
                // store's resolution catches mis-speculations).
                None => {
                    if !speculate {
                        return false;
                    }
                }
                Some(saddr) => {
                    let swidth = e.inst.mem_width().expect("store width");
                    if saddr == laddr && swidth == lwidth {
                        // Exact match: forwarding possible once we execute;
                        // the newest such store shadows anything older.
                        return true;
                    }
                    let overlap = saddr < laddr.wrapping_add(lwidth as u64)
                        && laddr < saddr.wrapping_add(swidth as u64);
                    if overlap {
                        return false; // partial overlap: wait for commit
                    }
                }
            }
        }
        true
    }

    fn issue<R: Recorder>(&mut self, recorder: &mut R) {
        if self.waiting_seqs.is_empty() {
            return;
        }
        let front_seq = self.window.front().expect("waiting entries exist").seq;
        let len = self.waiting_seqs.len();
        let mut issued = 0;
        // Single pass over the waiting candidates (oldest first), compacting
        // issued entries out of the list in place. `k` doubles as the
        // reservation-station scan counter: the list holds only Waiting
        // entries, so "k waiting entries examined" matches the old
        // whole-window scan's cap exactly.
        let mut k = 0;
        let mut w = 0;
        while k < len {
            if issued >= self.cfg.width() || k >= self.cfg.rs_entries {
                break;
            }
            let seq = self.waiting_seqs[k];
            let i = (seq - front_seq) as usize;
            let srcs = self.src_lane[i];
            let ready = srcs.iter().flatten().all(|p| self.ready[p.index()]);
            let take = ready && {
                let e = &self.window[i];
                !matches!(e.inst.kind(), idld_isa::InstKind::Load) || self.load_may_issue(i)
            };
            if take {
                let done = self.cycle + self.latency(&self.window[i].inst);
                self.stat[i] = Status::Executing { done };
                self.exec_done.push((done, seq));
                recorder.record(self.cycle, ObsEvent::Issue { seq });
                self.stats.issued += 1;
                issued += 1;
            } else {
                self.waiting_seqs[w] = seq;
                w += 1;
            }
            k += 1;
        }
        if w < k {
            self.waiting_seqs.copy_within(k..len, w);
            self.waiting_seqs.truncate(len - (k - w));
        }
    }

    /// Predicts the next pc for the instruction at `pc`, checkpointing the
    /// global history before any prediction shift. Returns `(next, hist)`,
    /// or `None` next for `Halt` (fetch stops behind it).
    fn predict_next(&mut self, pc: usize, ctrl: FetchCtrl) -> (Option<usize>, u32) {
        let hist = self.predictor.history();
        let next = match ctrl {
            FetchCtrl::Br { target } => {
                let (taken, _) = self.predictor.predict_dir(pc);
                Some(if taken { target } else { pc + 1 })
            }
            FetchCtrl::Jal { target } => Some(target),
            FetchCtrl::Jalr => Some(self.predictor.predict_target(pc).unwrap_or(pc + 1)),
            FetchCtrl::Halt => None,
            FetchCtrl::Fall => Some(pc + 1),
        };
        (next, hist)
    }

    fn fetch_rename<R: Recorder>(
        &mut self,
        hook: &mut impl FaultHook,
        checkers: &mut CheckerSet,
        recorder: &mut R,
    ) -> Result<(), idld_rrs::RrsAssert> {
        // The scratch buffers move out of `self` for the duration of the
        // cycle (the body needs `&mut self` for the RRS) and come back
        // empty, preserving the between-cycles-empty invariant that lets
        // snapshots skip them.
        let mut group = std::mem::take(&mut self.fetch_buf);
        let mut reqs = std::mem::take(&mut self.req_buf);
        let mut outs = std::mem::take(&mut self.out_buf);
        let res =
            self.fetch_rename_with(hook, checkers, &mut group, &mut reqs, &mut outs, recorder);
        group.clear();
        reqs.clear();
        outs.clear();
        self.fetch_buf = group;
        self.req_buf = reqs;
        self.out_buf = outs;
        res
    }

    #[allow(clippy::too_many_arguments)]
    fn fetch_rename_with<R: Recorder>(
        &mut self,
        hook: &mut impl FaultHook,
        checkers: &mut CheckerSet,
        group: &mut Vec<(usize, FetchDecode, usize, u32)>,
        reqs: &mut Vec<RenameRequest>,
        outs: &mut Vec<idld_rrs::RenameOut>,
        recorder: &mut R,
    ) -> Result<(), idld_rrs::RrsAssert> {
        // Collect a fetch group following the predicted path.
        group.clear();
        let mut pc = self.fetch_pc;
        for _ in 0..self.cfg.width() {
            let Some(&d) = self.decode.get(pc) else {
                self.fetch_fault = Some(pc);
                self.fetch_enabled = false;
                break;
            };
            match self.predict_next(pc, d.ctrl) {
                (Some(next), hist) => {
                    group.push((pc, d, next, hist));
                    pc = next;
                }
                (None, hist) => {
                    // Halt: fetch it, then stop fetching.
                    group.push((pc, d, pc + 1, hist));
                    self.halt_in_flight = true;
                    self.fetch_enabled = false;
                    break;
                }
            }
        }

        // Trim to available resources (RS space, RRS capacity).
        let rs_free = self.cfg.rs_entries.saturating_sub(self.waiting_seqs.len());
        let mut n = group.len().min(rs_free);
        loop {
            let dests = group[..n]
                .iter()
                .filter(|(_, d, _, _)| d.req.ldst.is_some())
                .count();
            if n == 0 || self.rrs.can_rename(n, dests) {
                break;
            }
            n -= 1;
        }
        if n < group.len() {
            self.stats.frontend_stalls += 1;
            // Couldn't take the whole group: refetch the rest next cycle,
            // unwinding the speculative history the trimmed tail shifted.
            if let Some(&(first_pc, _, _, hist)) = group.get(n) {
                self.fetch_pc = first_pc;
                self.predictor.set_history(hist);
            }
            // A trimmed group cannot include the halt/fault stop decisions
            // beyond position n.
            if self.halt_in_flight
                && !group[..n]
                    .iter()
                    .any(|(_, d, _, _)| matches!(d.ctrl, FetchCtrl::Halt))
            {
                self.halt_in_flight = false;
                self.fetch_enabled = true;
            }
            if self.fetch_fault.is_some() {
                self.fetch_fault = None;
                self.fetch_enabled = true;
            }
            group.truncate(n);
        } else if self.fetch_enabled {
            self.fetch_pc = pc;
        }
        if group.is_empty() {
            return Ok(());
        }

        reqs.clear();
        reqs.extend(group.iter().map(|(_, d, _, _)| d.req));
        self.rrs.rename_group_into(reqs, outs, hook, checkers)?;

        for ((pc, d, pred_next, bp_hist), out) in group.drain(..).zip(outs.drain(..)) {
            self.stats.renamed += 1;
            if out.eliminated {
                self.stats.eliminated_moves += 1;
            }
            if recorder.enabled() {
                // Fetch is recorded only for instructions the cycle kept:
                // a trimmed tail is refetched (and re-recorded) next cycle.
                recorder.record(self.cycle, ObsEvent::Fetch { pc: pc as u32 });
                recorder.record(
                    self.cycle,
                    ObsEvent::Rename {
                        pc: pc as u32,
                        seq: out.seq,
                        pdst: (!out.eliminated)
                            .then_some(out.new_pdst)
                            .flatten()
                            .map(|p| p.index() as u16),
                        eliminated: out.eliminated,
                    },
                );
            }
            if matches!(d.kind, idld_isa::InstKind::Store) {
                self.store_seqs.push_back(out.seq);
            }
            // Store-sets dispatch interactions (speculative mode only).
            let mut wait_for_store = None;
            if self.cfg.mem_dep_speculation {
                match d.kind {
                    idld_isa::InstKind::Store => {
                        let d = self.store_sets.dispatch_store(pc as u64, StoreTag(out.seq));
                        let _ = d;
                    }
                    idld_isa::InstKind::Load => {
                        wait_for_store = self.store_sets.dispatch_load(pc as u64).map(|t| t.0);
                    }
                    _ => {}
                }
            }
            if !out.eliminated {
                if let Some(p) = out.new_pdst {
                    self.ready[p.index()] = false;
                }
            }
            // Eliminated moves need no execution: their destination *is*
            // the source physical register, whose readiness the original
            // producer controls.
            let status = if d.no_exec || out.eliminated {
                Status::Done
            } else {
                self.waiting_seqs.push(out.seq);
                Status::Waiting
            };
            self.stat.push_back(status);
            self.src_lane.push_back(out.srcs);
            self.window.push_back(Entry {
                seq: out.seq,
                pc,
                inst: d.inst,
                srcs: out.srcs,
                new_pdst: out.new_pdst,
                pred_next,
                bp_hist,
                result: 0,
                addr: None,
                fault: None,
                mispredict_to: None,
                wait_for_store,
                forwarded_from: None,
            });
        }
        Ok(())
    }
}

/// A complete capture of a [`Simulator`]'s mutable state at a cycle
/// boundary, plus the attached checker state.
///
/// Produced by [`Simulator::snapshot`], consumed by [`Simulator::restore`].
/// The restored simulator continues bit-for-bit identically to one that
/// never stopped — same commits, same cycles, same checker verdicts —
/// which is what lets a fault-injection campaign fork thousands of runs
/// off one golden prefix instead of re-simulating it each time.
///
/// The per-cycle scratch buffers (`fetch_buf` and friends) are *not*
/// captured: they are empty at every cycle boundary by construction.
#[derive(Clone)]
pub struct SimSnapshot {
    recorder: RecorderState,
    rrs: Rrs,
    /// Data memory at the capture point; `None` for *lean* snapshots
    /// ([`SimSnapshot::discard_mem`]), which are restored through
    /// [`Simulator::restore_from_arch`] with emulator-reconstructed memory.
    mem: Option<Memory>,
    prf: Vec<u64>,
    ready: Vec<bool>,
    window: VecDeque<Entry>,
    stat: VecDeque<Status>,
    predictor: Predictor,
    fetch_pc: usize,
    fetch_enabled: bool,
    fetch_fault: Option<usize>,
    halt_in_flight: bool,
    pending_flush: Option<(u64, usize)>,
    redirect_after_recovery: Option<usize>,
    cycle: u64,
    output: Vec<u64>,
    committed: u64,
    stats: SimStats,
    store_sets: StoreSets,
    checkers: CheckerSet,
}

impl std::fmt::Debug for SimSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimSnapshot")
            .field("cycle", &self.cycle)
            .field("committed", &self.committed)
            .field("window_depth", &self.window.len())
            .finish_non_exhaustive()
    }
}

impl SimSnapshot {
    /// The cycle the snapshot was taken at.
    #[inline]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Instructions committed up to the snapshot point.
    #[inline]
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// The captured recorder state ([`RecorderState::Null`] for snapshots
    /// taken through the non-observed entry points).
    #[inline]
    pub fn recorder_state(&self) -> &RecorderState {
        &self.recorder
    }

    /// Drops the captured data memory, turning this into a *lean* snapshot.
    ///
    /// Memory is by far the largest component of a snapshot (the suite
    /// workloads carry 1 MiB each, against a few KiB for everything else),
    /// and it is redundant: stores apply at commit, so the in-order
    /// emulator reproduces it exactly from the committed instruction
    /// count. Lean snapshots must be restored through
    /// [`Simulator::restore_from_arch`]; plain [`Simulator::restore`]
    /// panics on them.
    pub fn discard_mem(&mut self) {
        self.mem = None;
    }

    /// True if this snapshot still carries its captured memory image.
    #[inline]
    pub fn has_mem(&self) -> bool {
        self.mem.is_some()
    }

    /// The fast-forward bit-exactness gate: checks that `emu`, advanced to
    /// exactly this snapshot's committed instruction count, agrees with
    /// the snapshot's committed architectural view — register file (read
    /// through the retirement RAT), output stream, and next-to-execute pc
    /// (the window head's pc; when the window is drained, the fetch pc).
    ///
    /// Snapshots are taken on the bug-free prefix of golden runs, where
    /// the two engines are architecturally equivalent by contract, so any
    /// disagreement here is an emulator-vs-OoO divergence — exactly what
    /// fast-forwarding must turn into a hard failure instead of silently
    /// corrupting a campaign.
    pub fn verify_arch(&self, emu: &Emulator) -> Result<(), FfDivergence> {
        if emu.steps() != self.committed {
            return Err(FfDivergence::Steps {
                emu: emu.steps(),
                snap: self.committed,
            });
        }
        for arch in 0..NUM_ARCH_REGS {
            let snap = self.prf[self.rrs.rrat_lookup(arch).index()];
            let emu_v = emu.regs()[arch];
            if emu_v != snap {
                return Err(FfDivergence::Reg {
                    arch,
                    emu: emu_v,
                    snap,
                });
            }
        }
        if emu.output() != self.output {
            return Err(FfDivergence::Output {
                emu_len: emu.output().len(),
                snap_len: self.output.len(),
            });
        }
        let snap_pc = match self.window.front() {
            Some(front) => Some(front.pc),
            // Drained window: everything fetched has committed, so the
            // fetch pc is the architectural next pc — unless fetch already
            // stopped on an invalid pc or recovery is mid-walk, where no
            // single "next pc" exists to compare.
            None if self.fetch_fault.is_none() && !self.rrs.recovery_active() => {
                Some(self.fetch_pc)
            }
            None => None,
        };
        if let Some(snap_pc) = snap_pc {
            if emu.pc() != snap_pc {
                return Err(FfDivergence::Pc {
                    emu: emu.pc(),
                    snap: snap_pc,
                });
            }
        }
        Ok(())
    }

    /// Structural equality of the captured *simulator* state (checker
    /// state excluded — trait objects have no general equality; compare
    /// their detections instead). Used by determinism tests to prove a
    /// forked run converges to the same final state as an uninterrupted
    /// one.
    pub fn state_eq(&self, other: &SimSnapshot) -> bool {
        self.rrs == other.rrs
            && self.mem == other.mem
            && self.prf == other.prf
            && self.ready == other.ready
            && self.window == other.window
            && self.stat == other.stat
            && self.predictor == other.predictor
            && self.fetch_pc == other.fetch_pc
            && self.fetch_enabled == other.fetch_enabled
            && self.fetch_fault == other.fetch_fault
            && self.halt_in_flight == other.halt_in_flight
            && self.pending_flush == other.pending_flush
            && self.redirect_after_recovery == other.redirect_after_recovery
            && self.cycle == other.cycle
            && self.output == other.output
            && self.committed == other.committed
            && self.stats == other.stats
            && self.store_sets == other.store_sets
    }
}

/// A divergence caught by the fast-forward bit-exactness gate
/// ([`SimSnapshot::verify_arch`]): the in-order emulator, advanced to the
/// hand-off instruction count, disagrees with the cycle-accurate
/// snapshot's committed architectural view.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FfDivergence {
    /// The emulator is not at the snapshot's committed instruction count.
    Steps {
        /// Emulator steps executed.
        emu: u64,
        /// Snapshot committed-instruction count.
        snap: u64,
    },
    /// An architectural register differs between the emulator and the
    /// snapshot's retirement-RAT view.
    Reg {
        /// Architectural register number.
        arch: usize,
        /// Emulator value.
        emu: u64,
        /// Snapshot (retirement-RAT) value.
        snap: u64,
    },
    /// The output streams differ.
    Output {
        /// Emulator output length.
        emu_len: usize,
        /// Snapshot output length.
        snap_len: usize,
    },
    /// The next-to-execute pc differs.
    Pc {
        /// Emulator pc.
        emu: usize,
        /// Snapshot view of the next-to-commit pc.
        snap: usize,
    },
}

impl std::fmt::Display for FfDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            FfDivergence::Steps { emu, snap } => {
                write!(f, "emulator at step {emu}, snapshot committed {snap}")
            }
            FfDivergence::Reg { arch, emu, snap } => {
                write!(f, "r{arch}: emulator {emu:#x} vs committed view {snap:#x}")
            }
            FfDivergence::Output { emu_len, snap_len } => write!(
                f,
                "output streams differ (emulator {emu_len} values, snapshot {snap_len})"
            ),
            FfDivergence::Pc { emu, snap } => {
                write!(f, "next pc: emulator {emu} vs snapshot {snap}")
            }
        }
    }
}

impl std::error::Error for FfDivergence {}

/// A simulation run driven in resumable slices.
///
/// Created by [`Simulator::begin_run`]; owns the run-scoped bookkeeping
/// (commit trace, divergence monitor) that the one-shot entry points kept
/// on the stack. Call [`SegmentedRun::step_until`] to advance to chosen
/// pause cycles — taking [`SimSnapshot`]s at each boundary — then
/// [`SegmentedRun::run_to_end`] and [`SegmentedRun::finish`].
pub struct SegmentedRun<'g> {
    trace: CommitTrace,
    monitor: Option<TraceMonitor<'g>>,
    record: bool,
    max_cycles: u64,
}

impl<'g> SegmentedRun<'g> {
    /// Advances the run until `sim.cycle() >= pause_at`, the cycle budget,
    /// or a terminal stop. Returns `None` when paused (the run can
    /// continue), `Some(stop)` when the run ended.
    pub fn step_until(
        &mut self,
        sim: &mut Simulator<'_>,
        hook: &mut impl FaultHook,
        checkers: &mut CheckerSet,
        pause_at: u64,
    ) -> Option<SimStop> {
        self.step_until_observed(sim, hook, checkers, pause_at, &mut NullRecorder)
    }

    /// [`SegmentedRun::step_until`] with an event recorder attached.
    pub fn step_until_observed(
        &mut self,
        sim: &mut Simulator<'_>,
        hook: &mut impl FaultHook,
        checkers: &mut CheckerSet,
        pause_at: u64,
        recorder: &mut impl Recorder,
    ) -> Option<SimStop> {
        sim.main_loop(
            hook,
            checkers,
            &mut self.trace,
            &mut self.monitor,
            self.record,
            self.max_cycles,
            None,
            Some(pause_at),
            recorder,
        )
    }

    /// Runs to a terminal stop (no more pauses).
    pub fn run_to_end(
        &mut self,
        sim: &mut Simulator<'_>,
        hook: &mut impl FaultHook,
        checkers: &mut CheckerSet,
        interrupt: Option<&std::sync::atomic::AtomicBool>,
    ) -> SimStop {
        self.run_to_end_observed(sim, hook, checkers, interrupt, &mut NullRecorder)
    }

    /// [`SegmentedRun::run_to_end`] with an event recorder attached.
    pub fn run_to_end_observed(
        &mut self,
        sim: &mut Simulator<'_>,
        hook: &mut impl FaultHook,
        checkers: &mut CheckerSet,
        interrupt: Option<&std::sync::atomic::AtomicBool>,
        recorder: &mut impl Recorder,
    ) -> SimStop {
        sim.main_loop(
            hook,
            checkers,
            &mut self.trace,
            &mut self.monitor,
            self.record,
            self.max_cycles,
            interrupt,
            None,
            recorder,
        )
        .expect("run_to_end never pauses")
    }

    /// Consumes the run and packages the [`RunResult`].
    pub fn finish(
        self,
        sim: &mut Simulator<'_>,
        stop: SimStop,
        checkers: &mut CheckerSet,
    ) -> RunResult {
        sim.finish_run(stop, self.trace, self.monitor, checkers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idld_isa::reg::r;
    use idld_isa::{Asm, Emulator, StopReason};
    use idld_rrs::NoFaults;

    fn run_prog(a: Asm, width: usize) -> RunResult {
        let p = a.finish();
        let mut sim = Simulator::new(&p, SimConfig::with_width(width));
        sim.run(&mut NoFaults, &mut CheckerSet::new(), None, 1_000_000)
    }

    fn check_against_emulator(a: Asm, widths: &[usize]) {
        let p = a.finish();
        let mut emu = Emulator::new(&p);
        let expected = emu.run(10_000_000);
        assert_eq!(expected.stop, StopReason::Halted, "test program must halt");
        for &w in widths {
            let mut sim = Simulator::new(&p, SimConfig::with_width(w));
            let got = sim.run(&mut NoFaults, &mut CheckerSet::new(), None, 100_000_000);
            assert_eq!(got.stop, SimStop::Halted, "width {w}");
            assert_eq!(got.output, expected.output, "width {w}");
            assert_eq!(got.committed, expected.steps, "width {w}");
        }
    }

    #[test]
    fn straight_line_arithmetic() {
        let mut a = Asm::new();
        a.li(r(1), 6)
            .li(r(2), 7)
            .mul(r(3), r(1), r(2))
            .out(r(3))
            .halt();
        let res = run_prog(a, 4);
        assert_eq!(res.stop, SimStop::Halted);
        assert_eq!(res.output, vec![42]);
        assert!(res.final_contents.is_exact_partition());
    }

    #[test]
    fn loop_matches_emulator_at_all_widths() {
        let mut a = Asm::new();
        a.li(r(1), 0).li(r(2), 50);
        a.label("loop");
        a.add(r(1), r(1), r(2));
        a.addi(r(2), r(2), -1);
        a.bne(r(2), r(0), "loop");
        a.out(r(1)).halt();
        check_against_emulator(a, &[1, 2, 4, 6, 8]);
    }

    #[test]
    fn memory_and_forwarding_matches_emulator() {
        let mut a = Asm::new();
        a.li(r(10), 256); // base
        a.li(r(1), 0);
        a.li(r(2), 20);
        a.label("w");
        a.slli(r(3), r(1), 3);
        a.add(r(3), r(3), r(10));
        a.mul(r(4), r(1), r(1));
        a.st(r(4), r(3), 0);
        a.ld(r(5), r(3), 0); // immediate reload → forwarding
        a.out(r(5));
        a.addi(r(1), r(1), 1);
        a.blt(r(1), r(2), "w");
        a.halt();
        check_against_emulator(a, &[1, 4, 8]);
    }

    #[test]
    fn partially_overlapping_store_under_speculative_load_replays() {
        // Minimized from fuzz seed 0xcafebabe iter 09805: with memory
        // dependence speculation on, the 4-byte load at 88 issues past the
        // unresolved 8-byte store at 89; the store then resolves to a
        // partially overlapping address while the load is still in flight,
        // where the violation scan cannot see it (its address is recorded
        // only at completion). The load must replay after the store
        // commits instead of completing with stale memory bytes.
        let mut a = Asm::new();
        a.li(r(5), 415);
        a.ldb(r(21), r(31), 2851); // keeps the load port busy a cycle
        a.st(r(5), r(31), 89);
        a.ldw(r(6), r(31), 88);
        a.out(r(6));
        a.halt();
        let p = a.finish();
        let mut emu = Emulator::new(&p);
        let expected = emu.run(10_000);
        assert_eq!(expected.stop, StopReason::Halted);
        for w in [1, 2, 4, 8] {
            for spec in [false, true] {
                let mut cfg = SimConfig::with_width(w);
                cfg.mem_dep_speculation = spec;
                let mut sim = Simulator::new(&p, cfg);
                let got = sim.run(&mut NoFaults, &mut CheckerSet::new(), None, 100_000);
                assert_eq!(got.stop, SimStop::Halted, "width {w} spec {spec}");
                assert_eq!(got.output, expected.output, "width {w} spec {spec}");
            }
        }
    }

    #[test]
    fn data_dependent_branches_match_emulator() {
        // Alternating hard-to-predict branches exercise flush recovery.
        let mut a = Asm::new();
        a.li(r(1), 0); // i
        a.li(r(2), 64);
        a.li(r(5), 0); // acc
        a.li(r(6), 1); // lfsr-ish state
        a.label("loop");
        a.muli(r(6), r(6), 1103515245);
        a.addi(r(6), r(6), 12345);
        a.srli(r(7), r(6), 16);
        a.andi(r(7), r(7), 1);
        a.beq(r(7), r(0), "even");
        a.addi(r(5), r(5), 3);
        a.j("next");
        a.label("even");
        a.addi(r(5), r(5), 5);
        a.label("next");
        a.addi(r(1), r(1), 1);
        a.blt(r(1), r(2), "loop");
        a.out(r(5)).halt();
        check_against_emulator(a, &[1, 2, 4, 8]);
    }

    #[test]
    fn calls_and_returns_match_emulator() {
        let mut a = Asm::new();
        a.li(r(10), 7);
        a.li(r(11), 0);
        a.li(r(12), 6);
        a.label("loop");
        a.jal(r(1), "square");
        a.add(r(11), r(11), r(10));
        a.addi(r(10), r(10), -1);
        a.addi(r(12), r(12), -1);
        a.bne(r(12), r(0), "loop");
        a.out(r(11)).halt();
        a.label("square");
        a.mul(r(10), r(10), r(10));
        a.jalr(r(2), r(1), 0);
        check_against_emulator(a, &[1, 4]);
    }

    #[test]
    fn commit_trace_is_deterministic() {
        let mut a = Asm::new();
        a.li(r(1), 0).li(r(2), 30);
        a.label("loop");
        a.addi(r(1), r(1), 1);
        a.blt(r(1), r(2), "loop");
        a.out(r(1)).halt();
        let p = a.finish();
        let run = |p: &Program| {
            let mut sim = Simulator::new(p, SimConfig::default());
            sim.run(&mut NoFaults, &mut CheckerSet::new(), None, 100_000)
        };
        let r1 = run(&p);
        let r2 = run(&p);
        assert_eq!(r1.trace, r2.trace);
        assert_eq!(r1.cycles, r2.cycles);
    }

    #[test]
    fn golden_comparison_of_identical_run_shows_no_divergence() {
        let mut a = Asm::new();
        a.li(r(1), 5).out(r(1)).halt();
        let p = a.finish();
        let golden = {
            let mut sim = Simulator::new(&p, SimConfig::default());
            sim.run(&mut NoFaults, &mut CheckerSet::new(), None, 10_000)
        };
        let mut sim = Simulator::new(&p, SimConfig::default());
        let rerun = sim.run(
            &mut NoFaults,
            &mut CheckerSet::new(),
            Some(&golden.trace),
            10_000,
        );
        assert!(!rerun.divergence.any());
    }

    #[test]
    fn memory_fault_crashes_at_commit() {
        let mut a = Asm::new();
        a.li(r(1), 1 << 40);
        a.ld(r(2), r(1), 0);
        a.halt();
        let res = run_prog(a, 4);
        match res.stop {
            SimStop::Crash(CrashCause::MemFault { addr, .. }) => assert_eq!(addr, 1 << 40),
            other => panic!("expected crash, got {other:?}"),
        }
    }

    #[test]
    fn wrong_path_fault_is_squashed() {
        // A predicted-taken... actually: branch that is *not* taken but the
        // predictor (weakly-taken at reset) predicts taken, sending fetch
        // into a faulting path that must be squashed harmlessly.
        let mut a = Asm::new();
        a.li(r(1), 1);
        a.li(r(9), 1 << 40);
        a.beq(r(1), r(0), "poison"); // not taken, predicted taken at reset
        a.li(r(3), 42);
        a.out(r(3)).halt();
        a.label("poison");
        a.ld(r(4), r(9), 0); // would fault if committed
        a.halt();
        let res = run_prog(a, 4);
        assert_eq!(res.stop, SimStop::Halted);
        assert_eq!(res.output, vec![42]);
        assert!(res.final_contents.is_exact_partition());
    }

    #[test]
    fn running_off_the_end_crashes() {
        let mut a = Asm::new();
        a.li(r(1), 3);
        a.nop();
        let res = run_prog(a, 2);
        assert!(
            matches!(res.stop, SimStop::Crash(CrashCause::InvalidPc(2))),
            "{:?}",
            res.stop
        );
    }

    #[test]
    fn cycle_limit_reported() {
        let mut a = Asm::new();
        a.label("spin");
        a.j("spin");
        let p = a.finish();
        let mut sim = Simulator::new(&p, SimConfig::default());
        let res = sim.run(&mut NoFaults, &mut CheckerSet::new(), None, 500);
        assert_eq!(res.stop, SimStop::CycleLimit);
        assert_eq!(res.cycles, 500);
    }

    #[test]
    fn wider_cores_are_not_slower() {
        let mut a = Asm::new();
        a.li(r(1), 0).li(r(2), 200);
        a.label("loop");
        a.addi(r(3), r(1), 5);
        a.muli(r(4), r(3), 3);
        a.xori(r(5), r(4), 0x55);
        a.add(r(6), r(5), r(3));
        a.addi(r(1), r(1), 1);
        a.blt(r(1), r(2), "loop");
        a.out(r(6)).halt();
        let p = a.finish();
        let cycles = |w: usize| {
            let mut sim = Simulator::new(&p, SimConfig::with_width(w));
            let res = sim.run(&mut NoFaults, &mut CheckerSet::new(), None, 1_000_000);
            assert_eq!(res.stop, SimStop::Halted);
            res.cycles
        };
        let c1 = cycles(1);
        let c4 = cycles(4);
        assert!(c4 < c1, "width 4 ({c4}) should beat width 1 ({c1})");
    }

    /// A branchy, memory-heavy program for the snapshot tests.
    fn snapshot_workload() -> Program {
        let mut a = Asm::new();
        a.li(r(10), 512);
        a.li(r(1), 0);
        a.li(r(2), 40);
        a.li(r(5), 1);
        a.label("loop");
        a.muli(r(5), r(5), 1103515245);
        a.addi(r(5), r(5), 12345);
        a.andi(r(6), r(5), 7);
        a.slli(r(7), r(1), 3);
        a.add(r(7), r(7), r(10));
        a.st(r(6), r(7), 0);
        a.ld(r(8), r(7), 0);
        a.beq(r(6), r(0), "skip");
        a.out(r(8));
        a.label("skip");
        a.addi(r(1), r(1), 1);
        a.blt(r(1), r(2), "loop");
        a.out(r(5)).halt();
        a.finish()
    }

    #[test]
    fn restored_run_is_bit_identical_to_uninterrupted() {
        use idld_core::IdldChecker;
        let p = snapshot_workload();
        let cfg = SimConfig::default();

        // Uninterrupted reference run.
        let mut ref_checkers = CheckerSet::new();
        ref_checkers.push(Box::new(IdldChecker::new(&cfg.rrs)));
        let mut ref_sim = Simulator::new(&p, cfg);
        let mut ref_seg = ref_sim.begin_run(None, 100_000);
        let ref_stop = ref_seg.run_to_end(&mut ref_sim, &mut NoFaults, &mut ref_checkers, None);
        let ref_final = ref_sim.snapshot(&ref_checkers);
        let ref_res = ref_seg.finish(&mut ref_sim, ref_stop, &mut ref_checkers);
        assert_eq!(ref_res.stop, SimStop::Halted);

        // Paused run: snapshot mid-flight, fork into a FRESH simulator.
        let mut checkers = CheckerSet::new();
        checkers.push(Box::new(IdldChecker::new(&cfg.rrs)));
        let mut sim = Simulator::new(&p, cfg);
        let mut seg = sim.begin_run(None, 100_000);
        let paused = seg.step_until(&mut sim, &mut NoFaults, &mut checkers, ref_res.cycles / 2);
        assert_eq!(paused, None, "workload runs past the pause point");
        let snap = sim.snapshot(&checkers);
        assert!(snap.cycle() >= ref_res.cycles / 2);

        let mut fork_checkers = CheckerSet::new();
        let mut fork = Simulator::new(&p, cfg);
        fork.restore(&snap, &mut fork_checkers);
        let mut fseg = fork.begin_run(None, 100_000);
        let stop = fseg.run_to_end(&mut fork, &mut NoFaults, &mut fork_checkers, None);
        let fork_final = fork.snapshot(&fork_checkers);
        let fork_res = fseg.finish(&mut fork, stop, &mut fork_checkers);

        assert_eq!(fork_res.stop, SimStop::Halted);
        assert_eq!(fork_res.cycles, ref_res.cycles);
        assert_eq!(fork_res.committed, ref_res.committed);
        assert_eq!(fork_res.output, ref_res.output);
        assert_eq!(fork_res.stats, ref_res.stats);
        assert!(
            fork_final.state_eq(&ref_final),
            "forked run converges to the uninterrupted final state"
        );
        assert_eq!(
            fork_checkers.detections(),
            ref_checkers.detections(),
            "checker verdicts survive the snapshot/restore"
        );
    }

    #[test]
    fn resumed_golden_comparison_sees_no_divergence() {
        let p = snapshot_workload();
        let cfg = SimConfig::default();

        let golden = {
            let mut sim = Simulator::new(&p, cfg);
            sim.run(&mut NoFaults, &mut CheckerSet::new(), None, 100_000)
        };

        // Pause a fresh run mid-flight, then resume it in a NEW simulator
        // comparing against the golden trace: the monitor joins at the
        // restored commit position and must see a clean suffix.
        let mut checkers = CheckerSet::new();
        let mut sim = Simulator::new(&p, cfg);
        let mut seg = sim.begin_run(Some(&golden.trace), 100_000);
        assert_eq!(
            seg.step_until(&mut sim, &mut NoFaults, &mut checkers, golden.cycles / 3),
            None
        );
        let snap = sim.snapshot(&checkers);

        let mut rchk = CheckerSet::new();
        let mut resumed = Simulator::new(&p, cfg);
        resumed.restore(&snap, &mut rchk);
        let mut rseg = resumed.begin_run(Some(&golden.trace), 100_000);
        let stop = rseg.run_to_end(&mut resumed, &mut NoFaults, &mut rchk, None);
        let res = rseg.finish(&mut resumed, stop, &mut rchk);
        assert_eq!(res.stop, SimStop::Halted);
        assert!(!res.divergence.any(), "{:?}", res.divergence);
    }

    #[test]
    fn step_until_past_the_end_returns_the_stop() {
        let p = snapshot_workload();
        let mut sim = Simulator::new(&p, SimConfig::default());
        let mut checkers = CheckerSet::new();
        let mut seg = sim.begin_run(None, 100_000);
        let stop = seg.step_until(&mut sim, &mut NoFaults, &mut checkers, u64::MAX);
        assert_eq!(stop, Some(SimStop::Halted));
    }

    #[test]
    fn observed_run_records_the_pipeline_and_matches_unobserved() {
        use idld_core::IdldChecker;
        use idld_obs::{EventKind, RingRecorder};
        let p = snapshot_workload();
        let cfg = SimConfig::default();

        let plain = {
            let mut sim = Simulator::new(&p, cfg);
            sim.run(&mut NoFaults, &mut CheckerSet::new(), None, 100_000)
        };

        let mut checkers = CheckerSet::new();
        checkers.push(Box::new(IdldChecker::new(&cfg.rrs)));
        let mut rec = RingRecorder::default();
        let mut sim = Simulator::new(&p, cfg);
        let res = sim.run_observed(&mut NoFaults, &mut checkers, None, 100_000, &mut rec);

        // Observation must not perturb the simulation.
        assert_eq!(res.stop, plain.stop);
        assert_eq!(res.cycles, plain.cycles);
        assert_eq!(res.output, plain.output);
        assert_eq!(res.trace, plain.trace);

        // The stream accounts for the whole run.
        assert_eq!(res.committed, rec.count_of(EventKind::Commit));
        assert_eq!(res.stats.renamed, rec.count_of(EventKind::Rename));
        assert_eq!(res.stats.renamed, rec.count_of(EventKind::Fetch));
        assert_eq!(res.stats.issued, rec.count_of(EventKind::Issue));
        assert_eq!(
            res.stats.flushes,
            rec.count_of(EventKind::Flush),
            "one flush event per flush"
        );
        assert!(rec.count_of(EventKind::Occupancy) > 0);
        assert!(
            rec.count_of(EventKind::Checker) >= 1,
            "idld code changes were observed"
        );
    }

    #[test]
    fn forked_observed_run_emits_byte_identical_trace() {
        use idld_core::IdldChecker;
        use idld_obs::{Recorder, RingRecorder};
        let p = snapshot_workload();
        let cfg = SimConfig::default();

        // Cold observed run, uninterrupted.
        let mut cold_chk = CheckerSet::new();
        cold_chk.push(Box::new(IdldChecker::new(&cfg.rrs)));
        let mut cold_rec = RingRecorder::default();
        let mut cold = Simulator::new(&p, cfg);
        let cold_res =
            cold.run_observed(&mut NoFaults, &mut cold_chk, None, 100_000, &mut cold_rec);
        assert_eq!(cold_res.stop, SimStop::Halted);

        // Observed run paused mid-flight; snapshot captures recorder state.
        let mut chk = CheckerSet::new();
        chk.push(Box::new(IdldChecker::new(&cfg.rrs)));
        let mut rec = RingRecorder::default();
        let mut sim = Simulator::new(&p, cfg);
        let mut seg = sim.begin_run(None, 100_000);
        assert_eq!(
            seg.step_until_observed(
                &mut sim,
                &mut NoFaults,
                &mut chk,
                cold_res.cycles / 2,
                &mut rec
            ),
            None
        );
        let snap = sim.snapshot_observed(&chk, &rec);
        assert!(matches!(
            snap.recorder_state(),
            idld_obs::RecorderState::Ring(_)
        ));

        // Fork into a fresh simulator + fresh recorder.
        let mut fchk = CheckerSet::new();
        let mut frec = RingRecorder::default();
        let mut fork = Simulator::new(&p, cfg);
        fork.restore_observed(&snap, &mut fchk, &mut frec);
        let mut fseg = fork.begin_run(None, 100_000);
        let stop = fseg.run_to_end_observed(&mut fork, &mut NoFaults, &mut fchk, None, &mut frec);
        let fres = fseg.finish(&mut fork, stop, &mut fchk);

        assert_eq!(fres.stop, SimStop::Halted);
        assert_eq!(frec.digest(), cold_rec.digest(), "stream digests agree");
        assert_eq!(frec.total(), cold_rec.total());
        assert_eq!(frec.counts(), cold_rec.counts());
        assert!(frec.events().eq(cold_rec.events()), "retained tails agree");
        // And restoring into a NullRecorder is harmless.
        let mut nchk = CheckerSet::new();
        let mut fork2 = Simulator::new(&p, cfg);
        fork2.restore_observed(&snap, &mut nchk, &mut idld_obs::NullRecorder);
        assert_eq!(
            idld_obs::NullRecorder.state(),
            idld_obs::RecorderState::Null
        );
    }

    #[test]
    fn jalr_beyond_program_matches_emulator() {
        // Minimized reproducer: results/fuzz/corpus/emu-jalr-wrap-target.asm.
        // Surfaced by the fast-forward bit-exactness gate: the emulator used
        // to truncate an out-of-range jalr target into a valid pc while the
        // OoO model clamps it to `usize::MAX` and faults at the next fetch.
        // Both engines must now crash at the same (clamped) pc with the same
        // architectural state — the wrong-path `out` behind the alias pc
        // must never retire.
        let mut a = Asm::new();
        a.li(r(1), 0x1_0000_0003u64 as i64); // aliases pc 3 if truncated
        a.jalr(r(3), r(1), 0);
        a.halt();
        a.out(r(1)); // pc 3: the alias target a truncating engine runs
        a.halt();
        let p = a.finish();

        let mut emu = Emulator::new(&p);
        let eres = emu.run(1_000);
        let clamped = (0x1_0000_0003u64).min(usize::MAX as u64) as usize;
        assert_eq!(
            eres.stop,
            StopReason::Fault(idld_isa::EmuFault::InvalidPc(clamped))
        );

        for w in [1, 2, 4, 8] {
            let mut sim = Simulator::new(&p, SimConfig::with_width(w));
            let got = sim.run(&mut NoFaults, &mut CheckerSet::new(), None, 100_000);
            assert_eq!(
                got.stop,
                SimStop::Crash(CrashCause::InvalidPc(clamped)),
                "width {w}"
            );
            assert_eq!(got.output, eres.output, "width {w}");
            // The fault contract: the emulator stops *before* executing the
            // instruction at the bad pc, the simulator commits everything
            // older than the faulting fetch — both agree on the retired
            // prefix (li + jalr).
            assert_eq!(got.committed, eres.steps, "width {w}");
        }
    }

    #[test]
    fn lean_snapshot_restores_through_the_emulator_bit_identically() {
        use idld_core::IdldChecker;
        let p = snapshot_workload();
        let cfg = SimConfig::default();

        // Uninterrupted reference run.
        let mut ref_checkers = CheckerSet::new();
        ref_checkers.push(Box::new(IdldChecker::new(&cfg.rrs)));
        let mut ref_sim = Simulator::new(&p, cfg);
        let mut ref_seg = ref_sim.begin_run(None, 100_000);
        let ref_stop = ref_seg.run_to_end(&mut ref_sim, &mut NoFaults, &mut ref_checkers, None);
        let ref_final = ref_sim.snapshot(&ref_checkers);
        let ref_res = ref_seg.finish(&mut ref_sim, ref_stop, &mut ref_checkers);
        assert_eq!(ref_res.stop, SimStop::Halted);

        // Lean snapshot mid-flight: memory dropped at capture time.
        let mut checkers = CheckerSet::new();
        checkers.push(Box::new(IdldChecker::new(&cfg.rrs)));
        let mut sim = Simulator::new(&p, cfg);
        let mut seg = sim.begin_run(None, 100_000);
        assert_eq!(
            seg.step_until(&mut sim, &mut NoFaults, &mut checkers, ref_res.cycles / 2),
            None
        );
        let snap = sim.snapshot_lean(&checkers);
        assert!(!snap.has_mem(), "lean snapshots carry no memory image");

        // The emulator reconstructs memory; the gate passes; the resumed
        // run is bit-identical to the uninterrupted one.
        let mut emu = Emulator::new(&p);
        emu.run_to_step(snap.committed()).expect("clean prefix");
        let mut fchk = CheckerSet::new();
        let mut fork = Simulator::new(&p, cfg);
        fork.restore_from_arch(&snap, &emu, &mut fchk)
            .expect("bit-exactness gate passes on the golden prefix");
        let mut fseg = fork.begin_run(None, 100_000);
        let stop = fseg.run_to_end(&mut fork, &mut NoFaults, &mut fchk, None);
        let fork_final = fork.snapshot(&fchk);
        let fres = fseg.finish(&mut fork, stop, &mut fchk);

        assert_eq!(fres.stop, SimStop::Halted);
        assert_eq!(fres.cycles, ref_res.cycles);
        assert_eq!(fres.output, ref_res.output);
        assert_eq!(fres.stats, ref_res.stats);
        assert!(fork_final.state_eq(&ref_final));
    }

    #[test]
    fn verify_arch_refuses_a_diverged_emulator() {
        let p = snapshot_workload();
        let cfg = SimConfig::default();
        let mut checkers = CheckerSet::new();
        let mut sim = Simulator::new(&p, cfg);
        let mut seg = sim.begin_run(None, 100_000);
        assert_eq!(
            seg.step_until(&mut sim, &mut NoFaults, &mut checkers, 200),
            None
        );
        let snap = sim.snapshot_lean(&checkers);
        let target = snap.committed();
        assert!(target > 0, "pause point retires instructions");

        // Wrong step count → Steps divergence.
        let mut emu = Emulator::new(&p);
        emu.run_to_step(target - 1).unwrap();
        assert!(matches!(
            snap.verify_arch(&emu),
            Err(FfDivergence::Steps { .. })
        ));

        // Right step count but corrupted register → Reg divergence, and
        // restore_from_arch must refuse without touching the simulator.
        emu.run_to_step(target).unwrap();
        snap.verify_arch(&emu).expect("clean prefix verifies");
        let mut bad = Emulator::new(&p);
        bad.run_to_step(target).unwrap();
        bad.set_reg(r(5), bad.reg(r(5)) ^ 1);
        let err = snap.verify_arch(&bad).unwrap_err();
        assert!(matches!(err, FfDivergence::Reg { .. }), "{err}");
        let mut fchk = CheckerSet::new();
        let mut fork = Simulator::new(&p, cfg);
        assert!(fork.restore_from_arch(&snap, &bad, &mut fchk).is_err());
    }

    #[test]
    fn idld_checker_stays_clean_through_real_execution() {
        use idld_core::IdldChecker;
        let mut a = Asm::new();
        a.li(r(1), 0).li(r(2), 300);
        a.label("loop");
        a.muli(r(3), r(1), 7);
        a.andi(r(4), r(3), 63);
        a.beq(r(4), r(0), "skip");
        a.add(r(5), r(5), r(4));
        a.label("skip");
        a.addi(r(1), r(1), 1);
        a.blt(r(1), r(2), "loop");
        a.out(r(5)).halt();
        let p = a.finish();
        let cfg = SimConfig::default();
        let mut checkers = CheckerSet::new();
        checkers.push(Box::new(IdldChecker::new(&cfg.rrs)));
        let mut sim = Simulator::new(&p, cfg);
        let res = sim.run(&mut NoFaults, &mut checkers, None, 1_000_000);
        assert_eq!(res.stop, SimStop::Halted);
        assert_eq!(
            checkers.detection_of("idld"),
            None,
            "no false positives across thousands of cycles with flush recovery"
        );
    }
}
