//! Per-run microarchitectural statistics.

use std::fmt;

/// Counters collected during one simulated run.
///
/// All counters are exact (not sampled). They serve the width-sweep
/// analyses and give campaigns visibility into *why* masking rates differ
/// between workloads (wrong-path volume, flush frequency, move-elimination
/// rate).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SimStats {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Instructions renamed (correct + wrong path).
    pub renamed: u64,
    /// Renamed instructions that were move-eliminated.
    pub eliminated_moves: u64,
    /// Instructions issued to functional units.
    pub issued: u64,
    /// Conditional branches resolved.
    pub branches: u64,
    /// Resolved control instructions that mispredicted.
    pub mispredicts: u64,
    /// Pipeline flushes performed (recoveries started).
    pub flushes: u64,
    /// Cycles spent inside multi-cycle flush recovery.
    pub recovery_cycles: u64,
    /// Loads executed.
    pub loads: u64,
    /// Loads satisfied by store-to-load forwarding.
    pub load_forwards: u64,
    /// Loads replayed because an older store resolved to a partially
    /// overlapping address while the load was in flight.
    pub load_replays: u64,
    /// Stores committed to memory.
    pub stores: u64,
    /// Cycles in which the front end could not rename its whole fetch
    /// group for lack of resources (FL/ROB/RHT/RS space).
    pub frontend_stalls: u64,
    /// Memory-order violations (mis-speculated loads flushed and the
    /// store-sets predictor trained).
    pub mem_violations: u64,
    /// Sum over cycles of in-flight window occupancy (for averages).
    pub occupancy_sum: u64,
}

impl SimStats {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Fraction of renamed instructions that were wrong-path (squashed).
    pub fn wrong_path_fraction(&self) -> f64 {
        if self.renamed == 0 {
            0.0
        } else {
            (self.renamed - self.committed.min(self.renamed)) as f64 / self.renamed as f64
        }
    }

    /// Mispredicts per 1000 committed instructions.
    pub fn mpki(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            1000.0 * self.mispredicts as f64 / self.committed as f64
        }
    }

    /// Branch direction accuracy over resolved control instructions.
    pub fn branch_accuracy(&self) -> f64 {
        if self.branches == 0 {
            1.0
        } else {
            1.0 - self.mispredicts as f64 / self.branches as f64
        }
    }

    /// Mean in-flight window occupancy.
    pub fn avg_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// Fraction of loads satisfied by store-to-load forwarding.
    pub fn forward_rate(&self) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            self.load_forwards as f64 / self.loads as f64
        }
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cycles={} committed={} ipc={:.2} renamed={} wrong-path={:.1}%",
            self.cycles,
            self.committed,
            self.ipc(),
            self.renamed,
            100.0 * self.wrong_path_fraction()
        )?;
        writeln!(
            f,
            "branches={} mispredicts={} (acc {:.1}%, {:.1} mpki) flushes={} recovery-cycles={}",
            self.branches,
            self.mispredicts,
            100.0 * self.branch_accuracy(),
            self.mpki(),
            self.flushes,
            self.recovery_cycles
        )?;
        write!(
            f,
            "loads={} (fwd {:.1}%) stores={} moves-eliminated={} frontend-stalls={} avg-window={:.1}",
            self.loads,
            100.0 * self.forward_rate(),
            self.stores,
            self.eliminated_moves,
            self.frontend_stalls,
            self.avg_occupancy()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = SimStats {
            cycles: 100,
            committed: 150,
            renamed: 200,
            branches: 40,
            mispredicts: 4,
            loads: 10,
            load_forwards: 5,
            occupancy_sum: 2_000,
            ..Default::default()
        };
        assert!((s.ipc() - 1.5).abs() < 1e-9);
        assert!((s.wrong_path_fraction() - 0.25).abs() < 1e-9);
        assert!((s.mpki() - 26.666).abs() < 0.01);
        assert!((s.branch_accuracy() - 0.9).abs() < 1e-9);
        assert!((s.avg_occupancy() - 20.0).abs() < 1e-9);
        assert!((s.forward_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn zero_division_is_safe() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.mpki(), 0.0);
        assert_eq!(s.branch_accuracy(), 1.0);
        assert_eq!(s.forward_rate(), 0.0);
    }

    #[test]
    fn display_is_informative() {
        let text = SimStats {
            cycles: 10,
            committed: 5,
            ..Default::default()
        }
        .to_string();
        assert!(text.contains("ipc=0.50"));
        assert!(text.contains("flushes="));
    }
}
