//! Simulator configuration.

use idld_rrs::RrsConfig;

/// Out-of-order core configuration.
///
/// The default mirrors the paper's RRS design point (§VI.A) surrounded by a
/// plausible mid-size backend. Fetch, rename, issue and commit widths all
/// equal [`RrsConfig::width`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SimConfig {
    /// The register renaming subsystem configuration (and pipeline width).
    pub rrs: RrsConfig,
    /// Reservation-station (issue window) entries.
    pub rs_entries: usize,
    /// log2 of bimodal branch-direction table entries.
    pub bp_log2: u32,
    /// log2 of BTB entries for indirect-jump target prediction.
    pub btb_log2: u32,
    /// Latency of simple ALU operations (cycles).
    pub lat_alu: u64,
    /// Latency of multiply/divide operations.
    pub lat_muldiv: u64,
    /// Latency of loads (address generation + data access).
    pub lat_load: u64,
    /// Latency of store address/data capture.
    pub lat_store: u64,
    /// Latency of branches and jumps.
    pub lat_branch: u64,
    /// Enable store-sets memory dependence speculation (Chrysos & Emer):
    /// loads issue past older stores with unresolved addresses unless the
    /// predictor says otherwise; mis-speculations flush at the load and
    /// train the predictor. Off = conservative disambiguation.
    pub mem_dep_speculation: bool,
    /// Fast-forward provably dead cycles: when a cycle changes nothing
    /// (no commit/complete/issue/rename, no flush or recovery pending,
    /// nothing in execution, the fault hook permanently inert), every
    /// future cycle is identical, so the main loop jumps straight to the
    /// next external event (cycle budget or pause point) instead of
    /// ticking. Bit-exact — it only skips cycles a case analysis proves
    /// to be no-ops — and it turns hung injected runs (e.g. free-list
    /// exhaustion after a leak) from `2.5× golden` cycles into a few.
    pub stall_fast_forward: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            rrs: RrsConfig::default(),
            rs_entries: 32,
            bp_log2: 12,
            btb_log2: 6,
            lat_alu: 1,
            lat_muldiv: 4,
            lat_load: 3,
            lat_store: 1,
            lat_branch: 1,
            mem_dep_speculation: false,
            stall_fast_forward: true,
        }
    }
}

impl SimConfig {
    /// The default configuration at a given pipeline width (1/2/4/6/8 in
    /// the paper's sweep).
    pub fn with_width(width: usize) -> Self {
        SimConfig {
            rrs: RrsConfig::with_width(width),
            ..Default::default()
        }
    }

    /// Pipeline width (fetch = rename = issue = commit).
    #[inline]
    pub fn width(&self) -> usize {
        self.rrs.width
    }

    /// One point of the campaign config-space sweep: pipeline width ×
    /// ROB/window size × RAT-checkpoint count, everything else at the
    /// paper's design point.
    ///
    /// The window structures that must be able to hold the in-flight set
    /// scale with the ROB (RHT one entry per renamed in-flight
    /// instruction, reservation stations a third of the window) so a
    /// sweep over `rob_entries` measures the window itself, not an
    /// incidental cap in a sibling structure. At the default
    /// (4, 96, 4) this constructor reproduces `SimConfig::default()`
    /// exactly.
    pub fn sweep_point(width: usize, rob_entries: usize, num_ckpts: usize) -> Self {
        let mut cfg = SimConfig::with_width(width);
        cfg.rrs.rob_entries = rob_entries;
        cfg.rrs.num_ckpts = num_ckpts;
        cfg.rrs.rht_entries = cfg.rrs.rht_entries.max(rob_entries + width);
        cfg.rs_entries = cfg.rs_entries.max(rob_entries / 3);
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_design_point() {
        let c = SimConfig::default();
        assert_eq!(c.rrs.num_phys, 128);
        assert_eq!(c.rrs.rob_entries, 96);
        assert_eq!(c.width(), 4);
    }

    #[test]
    fn with_width() {
        assert_eq!(SimConfig::with_width(8).width(), 8);
        assert_eq!(SimConfig::with_width(1).width(), 1);
    }

    #[test]
    fn sweep_point_at_the_design_point_is_the_default() {
        assert_eq!(SimConfig::sweep_point(4, 96, 4), SimConfig::default());
    }

    #[test]
    fn sweep_point_scales_the_window_structures() {
        let big = SimConfig::sweep_point(8, 192, 8);
        assert_eq!(big.width(), 8);
        assert_eq!(big.rrs.rob_entries, 192);
        assert_eq!(big.rrs.num_ckpts, 8);
        assert!(big.rrs.rht_entries >= 200, "RHT must hold the window");
        assert!(big.rs_entries >= 64);
        let small = SimConfig::sweep_point(2, 48, 2);
        assert_eq!(small.rrs.rht_entries, 128, "default caps still apply");
        assert_eq!(small.rs_entries, 32);
    }
}
