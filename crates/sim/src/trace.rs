//! Commit traces and on-the-fly divergence detection.
//!
//! The paper's outcome classification (§IV.A) distinguishes *order*
//! divergence (a different instruction committed at position *i* — the
//! Control Flow Deviation class and worse) from *timing* divergence (the
//! same instruction committed in a different cycle — the Performance
//! class). Storing full traces for every injected run would be wasteful, so
//! runs compare against the golden trace incrementally and record only the
//! first divergence of each kind.
//!
//! Both [`CommitTrace`] (recording) and [`TraceMonitor`] (comparing) are
//! [`Consume`]rs of the observability event stream: the simulator emits one
//! [`ObsEvent::Commit`] per retirement and routes it here, so the commit
//! trace, the divergence monitor, and any attached recorder all observe
//! the *same* event — one source of truth for what committed when.

use idld_obs::{Consume, ObsEvent};

/// A recorded commit trace: the pc and cycle of every committed instruction.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct CommitTrace {
    /// Committed pcs, in program order.
    pub pcs: Vec<u32>,
    /// Commit cycle of each instruction.
    pub cycles: Vec<u64>,
}

impl CommitTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of committed instructions.
    #[inline]
    pub fn len(&self) -> usize {
        self.pcs.len()
    }

    /// True if nothing has committed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pcs.is_empty()
    }

    /// Appends one commit record.
    #[inline]
    pub fn push(&mut self, pc: usize, cycle: u64) {
        self.pcs.push(pc as u32);
        self.cycles.push(cycle);
    }
}

impl Consume for CommitTrace {
    #[inline]
    fn consume(&mut self, cycle: u64, ev: &ObsEvent) {
        if let ObsEvent::Commit { pc, .. } = *ev {
            self.push(pc as usize, cycle);
        }
    }
}

/// First divergences from a golden trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Divergence {
    /// Cycle of the first *order* divergence (different instruction
    /// committed, or trace length mismatch at termination).
    pub order: Option<u64>,
    /// Cycle of the first *timing* divergence (same instruction, different
    /// commit cycle).
    pub timing: Option<u64>,
}

impl Divergence {
    /// True if the commit trace deviated from golden in any way.
    pub fn any(&self) -> bool {
        self.order.is_some() || self.timing.is_some()
    }

    /// The earliest divergence cycle of any kind.
    pub fn first_cycle(&self) -> Option<u64> {
        match (self.order, self.timing) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

/// Streams a run's commits against a golden trace, recording first
/// divergences.
#[derive(Clone, Debug)]
pub struct TraceMonitor<'g> {
    golden: &'g CommitTrace,
    index: usize,
    divergence: Divergence,
}

impl<'g> TraceMonitor<'g> {
    /// Creates a monitor comparing against `golden`.
    pub fn new(golden: &'g CommitTrace) -> Self {
        Self::new_at(golden, 0)
    }

    /// Creates a monitor that joins the comparison at commit position
    /// `start_index`, for runs resumed from a state snapshot: the first
    /// `start_index` commits were produced by the golden run itself, so
    /// they match by construction and need no re-checking.
    pub fn new_at(golden: &'g CommitTrace, start_index: usize) -> Self {
        TraceMonitor {
            golden,
            index: start_index,
            divergence: Divergence::default(),
        }
    }

    /// Observes one commit.
    pub fn observe(&mut self, pc: usize, cycle: u64) {
        let i = self.index;
        self.index += 1;
        if i >= self.golden.len() {
            // Extra instructions beyond the golden run.
            self.divergence.order.get_or_insert(cycle);
            return;
        }
        if self.golden.pcs[i] as usize != pc {
            self.divergence.order.get_or_insert(cycle);
        } else if self.golden.cycles[i] != cycle {
            self.divergence.timing.get_or_insert(cycle);
        }
    }

    /// Declares the run finished at `cycle`; a short trace is an order
    /// divergence.
    pub fn finish(&mut self, cycle: u64) -> Divergence {
        if self.index < self.golden.len() {
            self.divergence.order.get_or_insert(cycle);
        }
        self.divergence
    }

    /// The divergences recorded so far.
    pub fn divergence(&self) -> Divergence {
        self.divergence
    }
}

impl Consume for TraceMonitor<'_> {
    #[inline]
    fn consume(&mut self, cycle: u64, ev: &ObsEvent) {
        if let ObsEvent::Commit { pc, .. } = *ev {
            self.observe(pc as usize, cycle);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn golden() -> CommitTrace {
        let mut t = CommitTrace::new();
        t.push(0, 1);
        t.push(1, 2);
        t.push(2, 5);
        t
    }

    #[test]
    fn identical_run_has_no_divergence() {
        let g = golden();
        let mut m = TraceMonitor::new(&g);
        m.observe(0, 1);
        m.observe(1, 2);
        m.observe(2, 5);
        let d = m.finish(6);
        assert!(!d.any());
        assert_eq!(d.first_cycle(), None);
    }

    #[test]
    fn timing_divergence_detected() {
        let g = golden();
        let mut m = TraceMonitor::new(&g);
        m.observe(0, 1);
        m.observe(1, 3); // late
        m.observe(2, 5);
        let d = m.finish(6);
        assert_eq!(d.timing, Some(3));
        assert_eq!(d.order, None);
        assert_eq!(d.first_cycle(), Some(3));
    }

    #[test]
    fn order_divergence_detected() {
        let g = golden();
        let mut m = TraceMonitor::new(&g);
        m.observe(0, 1);
        m.observe(7, 2); // wrong instruction
        let d = m.finish(9);
        assert_eq!(d.order, Some(2));
    }

    #[test]
    fn order_beats_timing_in_first_cycle() {
        let d = Divergence {
            order: Some(4),
            timing: Some(9),
        };
        assert_eq!(d.first_cycle(), Some(4));
    }

    #[test]
    fn short_trace_is_order_divergence_at_finish() {
        let g = golden();
        let mut m = TraceMonitor::new(&g);
        m.observe(0, 1);
        let d = m.finish(100);
        assert_eq!(d.order, Some(100));
    }

    #[test]
    fn monitor_joining_mid_trace_skips_the_verified_prefix() {
        let g = golden();
        let mut m = TraceMonitor::new_at(&g, 2);
        m.observe(2, 5);
        assert!(!m.finish(6).any(), "resumed run matches golden suffix");

        let mut late = TraceMonitor::new_at(&g, 2);
        late.observe(2, 9); // same pc, late commit
        assert_eq!(late.finish(10).timing, Some(9));
    }

    #[test]
    fn long_trace_is_order_divergence() {
        let g = golden();
        let mut m = TraceMonitor::new(&g);
        m.observe(0, 1);
        m.observe(1, 2);
        m.observe(2, 5);
        m.observe(3, 6); // extra
        assert_eq!(m.divergence().order, Some(6));
    }
}
