//! # idld-sim — cycle-accurate out-of-order core simulator
//!
//! An out-of-order superscalar core model in the spirit of the gem5 O3
//! configuration used by the IDLD paper's bug-modeling study (§IV), built on
//! the `idld-rrs` register renaming substrate:
//!
//! * front end: fetch at rename width with a bimodal direction predictor and
//!   a small BTB for indirect-jump targets; wrong-path instructions are
//!   genuinely fetched, renamed and executed until the mispredict resolves;
//! * rename: the full RRS of the paper — merged register file, FL, RAT,
//!   ROB, RHT, checkpoints — with every Table-I control signal passing
//!   through the fault hook;
//! * backend: unified reservation-station window with oldest-first
//!   wakeup/select, conservative memory disambiguation with exact-match
//!   store-to-load forwarding, configurable functional-unit latencies;
//! * recovery: multi-cycle checkpoint-restore plus positive/negative RHT
//!   walks (driven inside the RRS), with fetch redirect on completion;
//! * retirement: in-order commit performing all architectural effects
//!   (memory writes, output appends, fault delivery), recording the commit
//!   trace that the campaign layer compares against a golden run.
//!
//! Checkers from `idld-core` attach as pure observers of the RRS event
//! stream plus per-cycle / pipeline-empty callbacks.
//!
//! ```
//! use idld_isa::{Asm, reg::r};
//! use idld_sim::{SimConfig, Simulator, SimStop};
//! use idld_core::CheckerSet;
//! use idld_rrs::NoFaults;
//!
//! let mut a = Asm::new();
//! a.li(r(1), 6).li(r(2), 7).mul(r(3), r(1), r(2)).out(r(3)).halt();
//! let program = a.finish();
//!
//! let mut sim = Simulator::new(&program, SimConfig::default());
//! let result = sim.run(&mut NoFaults, &mut CheckerSet::new(), None, 10_000);
//! assert_eq!(result.stop, SimStop::Halted);
//! assert_eq!(result.output, vec![42]);
//! ```

pub mod config;
pub mod predictor;
pub mod result;
pub mod sim;
pub mod smt;
pub mod stats;
pub mod trace;

pub use config::SimConfig;
pub use result::{CrashCause, RunResult, SimStop};
pub use sim::{FfDivergence, SegmentedRun, SimSnapshot, Simulator};
pub use smt::{SmtRunResult, SmtSegmentedRun, SmtSimulator, SmtSnapshot};

pub use stats::SimStats;
pub use trace::{CommitTrace, Divergence, TraceMonitor};
