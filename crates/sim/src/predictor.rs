//! Branch direction and indirect-target prediction.

/// A gshare direction predictor (global history XOR pc into a 2-bit-counter
/// table) plus a direct-mapped BTB for indirect-jump (`Jalr`) targets.
///
/// The history register is updated speculatively at fetch and repaired on
/// mispredict recovery from the offending branch's checkpointed history —
/// the same discipline real front ends use. Good prediction matters for
/// fidelity here: wrong-path rename traffic is what *masks* RRS bug
/// activations (paper §III.B), so the predictor quality directly shapes the
/// Figure 3 masking rates.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Predictor {
    counters: Vec<u8>,
    btb: Vec<Option<(usize, usize)>>,
    dir_mask: usize,
    btb_mask: usize,
    ghist: u32,
}

impl Predictor {
    /// Creates a predictor with `2^bp_log2` direction counters and
    /// `2^btb_log2` BTB entries. Counters initialize weakly taken.
    pub fn new(bp_log2: u32, btb_log2: u32) -> Self {
        Predictor {
            counters: vec![2; 1 << bp_log2],
            btb: vec![None; 1 << btb_log2],
            dir_mask: (1 << bp_log2) - 1,
            btb_mask: (1 << btb_log2) - 1,
            ghist: 0,
        }
    }

    #[inline]
    fn index(&self, pc: usize, hist: u32) -> usize {
        (pc ^ (pc >> 7) ^ hist as usize) & self.dir_mask
    }

    /// The current (speculative) global history.
    #[inline]
    pub fn history(&self) -> u32 {
        self.ghist
    }

    /// Predicts the direction of the conditional branch at `pc` under the
    /// current speculative history, *and* shifts the prediction into the
    /// history. Returns `(taken, history_before)`; the caller checkpoints
    /// `history_before` with the branch for training and repair.
    #[inline]
    pub fn predict_dir(&mut self, pc: usize) -> (bool, u32) {
        let hist = self.ghist;
        let taken = self.counters[self.index(pc, hist)] >= 2;
        self.ghist = (self.ghist << 1) | taken as u32;
        (taken, hist)
    }

    /// Trains the counter for the branch at `pc` that was fetched under
    /// `hist` with the resolved outcome.
    #[inline]
    pub fn train_dir(&mut self, pc: usize, hist: u32, taken: bool) {
        let idx = self.index(pc, hist);
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// Repairs the speculative history after a mispredict: the offending
    /// branch's checkpointed history shifted by its actual outcome.
    #[inline]
    pub fn repair_history(&mut self, hist_before: u32, actual_taken: bool) {
        self.ghist = (hist_before << 1) | actual_taken as u32;
    }

    /// Overwrites the speculative history (flush repair for control
    /// instructions that do not shift it, and fetch-group trimming).
    #[inline]
    pub fn set_history(&mut self, hist: u32) {
        self.ghist = hist;
    }

    /// Predicts the target of the indirect jump at `pc` (BTB hit required).
    #[inline]
    pub fn predict_target(&self, pc: usize) -> Option<usize> {
        match self.btb[pc & self.btb_mask] {
            Some((tag, target)) if tag == pc => Some(target),
            _ => None,
        }
    }

    /// Trains the BTB with a resolved indirect target.
    #[inline]
    pub fn train_target(&mut self, pc: usize, target: usize) {
        self.btb[pc & self.btb_mask] = Some((pc, target));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_learn_direction() {
        let mut p = Predictor::new(6, 2);
        let (t0, h0) = p.predict_dir(5);
        assert!(t0, "weakly taken at reset");
        p.train_dir(5, h0, false);
        p.train_dir(5, h0, false);
        p.repair_history(h0, false);
        let (t1, _) = p.predict_dir(5);
        assert!(!t1, "learned not-taken under same history");
    }

    #[test]
    fn gshare_learns_periodic_patterns() {
        // Pattern T,T,N repeating — a bimodal predictor oscillates; gshare
        // keys on history and converges.
        let mut p = Predictor::new(10, 2);
        let pattern = [true, true, false];
        let mut correct = 0;
        let total = 300;
        for i in 0..total {
            let actual = pattern[i % 3];
            let (pred, hist) = p.predict_dir(64);
            if pred == actual {
                correct += 1;
            } else {
                p.repair_history(hist, actual);
            }
            p.train_dir(64, hist, actual);
        }
        assert!(
            correct * 100 / total > 90,
            "gshare should learn period-3: {correct}/{total}"
        );
    }

    #[test]
    fn history_shifts_and_repairs() {
        let mut p = Predictor::new(6, 2);
        let (t, h) = p.predict_dir(1);
        assert_eq!(p.history(), (h << 1) | t as u32);
        p.repair_history(h, !t);
        assert_eq!(p.history(), (h << 1) | (!t) as u32);
    }

    #[test]
    fn btb_tags_avoid_aliased_hits() {
        let mut p = Predictor::new(4, 2);
        assert_eq!(p.predict_target(3), None);
        p.train_target(3, 99);
        assert_eq!(p.predict_target(3), Some(99));
        // pc 7 aliases to the same set but has a different tag.
        assert_eq!(p.predict_target(7), None);
        p.train_target(7, 55);
        assert_eq!(p.predict_target(7), Some(55));
        assert_eq!(p.predict_target(3), None, "evicted");
    }

    #[test]
    fn counters_saturate() {
        let mut p = Predictor::new(4, 2);
        for _ in 0..10 {
            p.train_dir(1, 0, true);
        }
        p.train_dir(1, 0, false);
        let idx_pred = {
            let (t, h) = {
                let mut q = p.clone();
                q.ghist = 0;

                q.predict_dir(1)
            };
            let _ = h;
            t
        };
        assert!(idx_pred, "one not-taken cannot flip a saturated counter");
    }
}
